"""Unit tests for regions and the region directory."""

import numpy as np
import pytest

from repro.memory import Region, RegionCopy, RegionDirectory
from repro.sim.errors import SimulationError


def test_alloc_assigns_unique_nonzero_ids():
    d = RegionDirectory()
    r1 = d.alloc(home=0, size=4)
    r2 = d.alloc(home=1, size=8)
    assert r1.rid != r2.rid
    assert r1.rid != 0 and r2.rid != 0
    assert len(d) == 2


def test_lookup_roundtrip():
    d = RegionDirectory()
    r = d.alloc(home=3, size=16)
    assert d.get(r.rid) is r
    assert r.rid in d
    assert 9999 not in d


def test_unknown_rid_raises():
    d = RegionDirectory()
    with pytest.raises(SimulationError, match="unknown region"):
        d.get(42)


def test_region_data_zero_initialized():
    r = Region(1, home=0, size=10)
    assert r.home_data.shape == (10,)
    assert np.all(r.home_data == 0.0)


def test_zero_size_region_rejected():
    with pytest.raises(SimulationError):
        Region(1, home=0, size=0)


def test_copy_independent_of_home_data():
    r = Region(1, home=0, size=4)
    c = RegionCopy(r, node=2)
    r.home_data[0] = 5.0
    assert c.data[0] == 0.0
    c.data[1] = 7.0
    assert r.home_data[1] == 0.0
    assert c.rid == r.rid
    assert c.state == "invalid"


def test_allocation_order_is_deterministic():
    d = RegionDirectory()
    rids = [d.alloc(home=i % 3, size=1).rid for i in range(10)]
    assert rids == sorted(rids)
    assert [r.rid for r in d.all_regions()] == rids
