"""Regression tests for the kernel fast path (DESIGN.md §6).

The same-cycle ring, the inline trampoline, pooled delays, and the
pre-bound resume thunks are all pure optimizations: every test here
pins an ordering or naming property that must hold with them exactly
as it did with the plain single-heap kernel.
"""

import pytest

from repro.sim import Delay, Future, SimulationError, Simulator


# ---------------------------------------------------------------- ordering
def test_delay0_tasks_interleave_fifo():
    """Two tasks trading Delay(0)/Delay(1) steps interleave in spawn
    order at every cycle — the trampoline may not let one task run
    ahead while the other has an event pending at the same time."""
    sim = Simulator()
    order = []

    def task(name):
        order.append((sim.now, name, 0))
        yield Delay(0)
        order.append((sim.now, name, 1))
        yield Delay(1)
        order.append((sim.now, name, 2))
        yield Delay(0)
        order.append((sim.now, name, 3))

    sim.spawn(task("a"), name="a")
    sim.spawn(task("b"), name="b")
    sim.run()
    assert order == [
        (0, "a", 0), (0, "b", 0),
        (0, "a", 1), (0, "b", 1),
        (1, "a", 2), (1, "b", 2),
        (1, "a", 3), (1, "b", 3),
    ]


def test_ring_and_heap_merge_by_seq():
    """Events scheduled at the same cycle through different paths (ring
    via delay-0, heap via a positive delay landing on that cycle) fire
    in schedule order."""
    sim = Simulator()
    order = []

    def driver():
        yield Delay(5)  # now == 5
        sim.schedule(1, lambda: order.append("heap-first"))  # heap, t=6
        yield Delay(1)  # now == 6; resume scheduled after heap-first
        order.append("task")
        sim.schedule(0, lambda: order.append("ring-last"))  # ring, t=6

    sim.spawn(driver(), name="d")
    sim.run()
    assert order == ["heap-first", "task", "ring-last"]


def test_resolved_future_does_not_jump_the_queue():
    sim = Simulator()
    order = []
    fut = Future(name="pre")
    fut.resolve("v")

    def waiter():
        sim.schedule(0, lambda: order.append("queued"))
        got = yield fut
        order.append(("woke", got))

    sim.spawn(waiter(), name="w")
    sim.run()
    assert order == ["queued", ("woke", "v")]


def test_trampoline_bounded_delay0_loop_still_terminates():
    sim = Simulator()

    def spinner():
        for _ in range(10_000):  # far beyond the trampoline bound
            yield Delay(0)
        return sim.now

    t = sim.spawn(spinner(), name="s")
    sim.run()
    assert t.done.result() == 0  # delay-0 never advances time


# ---------------------------------------------------------------- events
def test_events_counter_counts_logical_events():
    sim = Simulator()

    def task():
        yield Delay(1)
        yield Delay(0)
        yield Delay(2)

    sim.spawn(task(), name="t")
    sim.run()
    # spawn event + three delay resumes, whether or not any of them
    # were inlined by the trampoline.
    assert sim.events == 4


# ---------------------------------------------------------------- naming
def test_spawn_duplicate_names_get_unique_suffixes():
    sim = Simulator()

    def idle():
        yield Delay(1)

    names = [sim.spawn(idle(), name="worker").name for _ in range(3)]
    assert names == ["worker", "worker~1", "worker~2"]
    assert len({t.done.name for t in sim._tasks}) == 3
    sim.run()


def test_spawn_default_names_are_distinct():
    sim = Simulator()

    def idle():
        yield Delay(1)

    a = sim.spawn(idle())
    b = sim.spawn(idle())
    assert a.name != b.name
    sim.run()


def test_spawn_suffix_does_not_collide_with_explicit_name():
    sim = Simulator()

    def idle():
        yield Delay(1)

    sim.spawn(idle(), name="w~1")
    names = [sim.spawn(idle(), name="w").name for _ in range(3)]
    assert len(set(names) | {"w~1"}) == 4
    sim.run()


# ---------------------------------------------------------------- pooling
def test_delay_pool_preserves_value_semantics():
    assert Delay(3) is Delay(3)  # pooled singleton
    assert Delay(3) == Delay(3)
    assert Delay(3) != Delay(4)
    assert hash(Delay(7)) == hash(Delay(7))
    assert repr(Delay(5)) == "Delay(cycles=5)"
    big = Delay(100_000)  # beyond the pool: still a valid Delay
    assert big.cycles == 100_000
    with pytest.raises(AttributeError):
        Delay(3).cycles = 9
    with pytest.raises(SimulationError):
        Delay(-2)


# ---------------------------------------------------------------- run(until)
def test_run_until_pause_sets_now_even_between_events():
    sim = Simulator()
    fired = []

    def task():
        yield Delay(10)
        fired.append(sim.now)
        yield Delay(10)
        fired.append(sim.now)

    sim.spawn(task(), name="t")
    assert sim.run(until=15) == 15
    assert sim.now == 15 and fired == [10]


def test_run_until_resume_preserves_ordering():
    """Pausing and resuming must replay the identical event order as an
    uninterrupted run, including same-cycle ring entries."""

    def program(sim, log):
        def task(name, delays):
            for d in delays:
                yield Delay(d)
                log.append((sim.now, name))

        sim.spawn(task("a", [5, 0, 5]), name="a")
        sim.spawn(task("b", [5, 5, 0]), name="b")

    straight_log: list = []
    straight = Simulator()
    program(straight, straight_log)
    straight.run()

    paused_log: list = []
    paused = Simulator()
    program(paused, paused_log)
    for stop in (3, 5, 7, 10):
        assert paused.run(until=stop) == stop
    paused.run()

    assert paused_log == straight_log
    assert paused.now == straight.now


# ---------------------------------------------------------------- jitter
def test_same_jitter_seed_is_deterministic():
    """Two fresh simulators with the same seed produce identical traces
    and final times (the fast path is disabled under jitter and must
    not perturb the seeded RNG stream)."""

    def run_once(seed):
        trace: list = []
        sim = Simulator(trace=lambda t, msg: trace.append((t, msg)), jitter_seed=seed)

        def task(name, step):
            for _ in range(4):
                yield Delay(step)

        for i in range(4):
            sim.spawn(task(f"t{i}", 2 + (i % 2)), name=f"t{i}")
        sim.run()
        return sim.now, trace

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)  # different seed, different schedule


def test_jitter_fires_all_events_exactly_once():
    sim = Simulator(jitter_seed=3)
    seen = []

    def task(name):
        yield Delay(1)
        seen.append(name)
        yield Delay(1)
        seen.append(name)

    for i in range(3):
        sim.spawn(task(i), name=f"t{i}")
    sim.run()
    assert sorted(seen) == [0, 0, 1, 1, 2, 2]
