"""Unit tests for FIFO channels."""

from repro.sim import Channel, Delay, Simulator


def test_put_then_get_is_immediate():
    sim = Simulator()
    chan = Channel()
    chan.put("x")

    def task():
        item = yield from chan.get()
        return (sim.now, item)

    t = sim.spawn(task())
    sim.run()
    assert t.done.result() == (0, "x")


def test_get_blocks_until_put():
    sim = Simulator()
    chan = Channel()

    def consumer():
        item = yield from chan.get()
        return (sim.now, item)

    def producer():
        yield Delay(25)
        chan.put("late")

    t = sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert t.done.result() == (25, "late")


def test_fifo_order_preserved():
    sim = Simulator()
    chan = Channel()
    got = []

    def consumer():
        for _ in range(3):
            item = yield from chan.get()
            got.append(item)

    def producer():
        for i in range(3):
            yield Delay(1)
            chan.put(i)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [0, 1, 2]


def test_multiple_waiters_served_in_order():
    sim = Simulator()
    chan = Channel()
    got = []

    def consumer(name):
        item = yield from chan.get()
        got.append((name, item))

    def producer():
        yield Delay(5)
        chan.put("first")
        chan.put("second")

    sim.spawn(consumer("a"), name="a")
    sim.spawn(consumer("b"), name="b")
    sim.spawn(producer())
    sim.run()
    assert got == [("a", "first"), ("b", "second")]


def test_try_get_nonblocking():
    chan = Channel()
    assert chan.try_get() is None
    chan.put(1)
    assert len(chan) == 1
    assert chan.try_get() == 1
    assert chan.try_get() is None
