"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import DeadlockError, Delay, Future, SimulationError, Simulator


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0


def test_single_task_advances_time():
    sim = Simulator()

    def task():
        yield Delay(10)
        yield Delay(5)
        return "done"

    t = sim.spawn(task(), name="t")
    assert sim.run() == 15
    assert t.done.result() == "done"


def test_zero_delay_is_legal():
    sim = Simulator()

    def task():
        yield Delay(0)
        return sim.now

    t = sim.spawn(task())
    sim.run()
    assert t.done.result() == 0


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1)


def test_tasks_interleave_by_time():
    sim = Simulator()
    order = []

    def task(name, step):
        for _ in range(3):
            yield Delay(step)
            order.append((sim.now, name))

    sim.spawn(task("a", 10), name="a")
    sim.spawn(task("b", 15), name="b")
    sim.run()
    # Tie at t=30 goes to the event scheduled first (b's, queued at t=15).
    assert order == [
        (10, "a"),
        (15, "b"),
        (20, "a"),
        (30, "b"),
        (30, "a"),
        (45, "b"),
    ]


def test_future_blocks_until_resolved():
    sim = Simulator()
    fut = Future(name="f")
    log = []

    def waiter():
        value = yield fut
        log.append((sim.now, value))

    def resolver():
        yield Delay(42)
        fut.resolve("hello")

    sim.spawn(waiter(), name="w")
    sim.spawn(resolver(), name="r")
    sim.run()
    assert log == [(42, "hello")]


def test_already_resolved_future_resumes_immediately():
    sim = Simulator()
    fut = Future()
    fut.resolve(7)

    def task():
        v = yield fut
        return (sim.now, v)

    t = sim.spawn(task())
    sim.run()
    assert t.done.result() == (0, 7)


def test_failed_future_raises_inside_task():
    sim = Simulator()
    fut = Future()

    def task():
        try:
            yield fut
        except ValueError as e:
            return f"caught {e}"

    def failer():
        yield Delay(1)
        fut.fail(ValueError("boom"))

    t = sim.spawn(task())
    sim.spawn(failer())
    sim.run()
    assert t.done.result() == "caught boom"


def test_task_exception_propagates_from_run():
    sim = Simulator()

    def task():
        yield Delay(1)
        raise RuntimeError("crash")

    sim.spawn(task())
    with pytest.raises(RuntimeError, match="crash"):
        sim.run()


def test_deadlock_detected():
    sim = Simulator()
    fut = Future(name="never")

    def task():
        yield fut

    sim.spawn(task(), name="stuck")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck" in str(exc.value)


def test_join_on_task_done():
    sim = Simulator()

    def child():
        yield Delay(30)
        return 99

    def parent():
        t = sim.spawn(child(), name="child")
        v = yield t.done
        return (sim.now, v)

    p = sim.spawn(parent(), name="parent")
    sim.run()
    assert p.done.result() == (30, 99)


def test_mixed_ring_and_heap_ordering():
    """The nonzero-delay fast path must never jump ahead of queued work.

    Task a mixes zero-delay (same-cycle ring) and nonzero-delay (heap)
    yields while task b holds events in the heap at the same
    timestamps; the trampoline is only legal when the ring is empty
    and the heap's next event is later, so the observed interleaving
    must match the plain queue discipline exactly (ties go to the
    event scheduled first, ring work drains before later heap events).
    """
    sim = Simulator()
    order = []

    def stepper(name, delays):
        for d in delays:
            yield Delay(d)
            order.append((sim.now, name))

    sim.spawn(stepper("a", [5, 0, 0, 5]), name="a")
    sim.spawn(stepper("b", [5, 5, 0]), name="b")
    assert sim.run() == 10
    assert order == [
        (5, "a"),
        (5, "b"),
        (5, "a"),
        (5, "a"),
        (10, "b"),
        (10, "a"),
        (10, "b"),
    ]


def test_bad_yield_type_is_an_error():
    sim = Simulator()

    def task():
        yield 42

    sim.spawn(task())
    with pytest.raises(SimulationError, match="yielded 42"):
        sim.run()


def test_run_until_pauses_cleanly():
    sim = Simulator()
    hits = []

    def task():
        for _ in range(10):
            yield Delay(10)
            hits.append(sim.now)

    sim.spawn(task())
    sim.run(until=35)
    assert sim.now == 35
    assert hits == [10, 20, 30]
    sim.run()
    assert hits[-1] == 100


def test_run_all_collects_results():
    sim = Simulator()

    def worker(i):
        yield Delay(i)
        return i * i

    results = sim.run_all(worker(i) for i in range(5))
    assert results == [0, 1, 4, 9, 16]


def test_future_double_resolve_rejected():
    fut = Future()
    fut.resolve(1)
    with pytest.raises(SimulationError):
        fut.resolve(2)
    with pytest.raises(SimulationError):
        fut.fail(ValueError())


def test_future_result_before_resolve_rejected():
    fut = Future()
    with pytest.raises(SimulationError):
        fut.result()


def test_schedule_in_past_rejected():
    sim = Simulator()

    def task():
        yield Delay(10)
        sim.at(5, lambda: None)

    sim.spawn(task())
    with pytest.raises(SimulationError, match="past"):
        sim.run()


def test_trace_hook_records_events():
    events = []
    sim = Simulator(trace=lambda t, msg: events.append((t, msg)))

    def task():
        yield Delay(3)

    sim.spawn(task(), name="traced")
    sim.run()
    assert any("traced" in msg and "delay" in msg for _, msg in events)
    assert any("finished" in msg for _, msg in events)
