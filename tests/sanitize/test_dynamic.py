"""Dynamic access validator: seeded races, clean runs, and the zero-cost gate."""

import pytest

from repro.facade.context import run_spmd
from repro.sanitize import DynamicChecker


# ---------------------------------------------------------------------------
# SPMD fixture programs (node 0 allocates; the rid is shared via `state`)
# ---------------------------------------------------------------------------
def _racy_writes(state):
    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            state["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(state["rid"])
        yield from ctx.start_write(h)
        h.data[:] = ctx.nid
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.unmap(h)

    return program


def _barrier_separated(state):
    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            state["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(state["rid"])
        if ctx.nid == 0:
            yield from ctx.start_write(h)
            h.data[:] = 7
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.start_read(h)
        value = h.data[0]
        yield from ctx.end_read(h)
        yield from ctx.barrier(sid)
        yield from ctx.unmap(h)
        return value

    return program


def _lock_ordered(state):
    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            state["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        rid = state["rid"]
        h = yield from ctx.map(rid)
        yield from ctx.lock(rid)
        yield from ctx.start_write(h)
        h.data[0] = h.data[0] + 1
        yield from ctx.end_write(h)
        yield from ctx.unlock(rid)
        yield from ctx.barrier(sid)
        yield from ctx.unmap(h)

    return program


def _use_after_unmap(state):
    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            state["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(state["rid"])
        yield from ctx.unmap(h)
        if ctx.nid == 0:
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)
        yield from ctx.barrier(sid)

    return program


# ---------------------------------------------------------------------------
# integration through run_spmd(check=True)
# ---------------------------------------------------------------------------
def test_seeded_two_node_race_is_detected():
    res = run_spmd(_racy_writes({}), n_procs=2, check=True)
    ck = res.checker
    assert not ck.clean
    races = [r for r in ck.races if r.kind == "ww"]
    assert races and races[0].nodes == (0, 1)
    assert "region" in str(races[0])


def test_barrier_separated_program_is_clean():
    res = run_spmd(_barrier_separated({}), n_procs=4, check=True)
    assert res.checker.clean
    assert res.results == [7.0] * 4
    assert res.checker.accesses_checked > 0
    assert res.checker.sync_rounds >= 3


def test_lock_ordered_writes_are_clean():
    res = run_spmd(_lock_ordered({}), n_procs=4, check=True)
    assert res.checker.clean, res.checker.summary()


def test_use_after_unmap_is_flagged():
    res = run_spmd(_use_after_unmap({}), n_procs=2, check=True)
    kinds = {v.kind for v in res.checker.violations}
    assert "use-after-unmap" in kinds


def test_checked_run_keeps_simulated_cycles_identical():
    for factory in (_racy_writes, _barrier_separated, _lock_ordered):
        base = run_spmd(factory({}), n_procs=4)
        checked = run_spmd(factory({}), n_procs=4, check=True)
        assert checked.time == base.time, factory.__name__


def test_checker_absent_when_off():
    res = run_spmd(_barrier_separated({}), n_procs=2)
    assert res.checker is None


def test_check_requires_ace_backend():
    with pytest.raises(ValueError, match="ace"):
        run_spmd(_barrier_separated({}), backend="crl", n_procs=2, check=True)


def test_race_detect_protocol_reports_are_adopted():
    def program(ctx):
        sid = yield from ctx.new_space("RaceDetect")
        if ctx.nid == 0:
            program.rid = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(program.rid)
        yield from ctx.start_write(h)
        h.data[:] = ctx.nid
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)  # space barrier -> epoch close
        yield from ctx.unmap(h)
        yield from ctx.barrier(sid)

    res = run_spmd(program, n_procs=2, check=True)
    kinds = {r.kind for r in res.checker.races}
    assert "protocol" in kinds  # RaceDetect's epoch verdict, folded in
    assert "ww" in kinds  # the checker's own happens-before verdict


def test_report_and_summary_render():
    res = run_spmd(_racy_writes({}), n_procs=2, check=True)
    text = res.checker.summary()
    assert "race(s)" in text
    assert all(str(item) for item in res.checker.report())


# ---------------------------------------------------------------------------
# checker unit tests (no simulation)
# ---------------------------------------------------------------------------
def test_vector_clock_barrier_orders_accesses():
    ck = DynamicChecker(2)
    ck.access(0, 5, write=True)
    ck.barrier_arrive(0)
    ck.barrier_arrive(1)
    ck.access(1, 5, write=True)
    assert ck.clean


def test_unordered_writes_race_and_dedupe():
    ck = DynamicChecker(2)
    ck.access(0, 5, write=True)
    ck.access(1, 5, write=True)
    ck.access(1, 5, write=True)  # duplicate pair: one record
    assert len(ck.races) == 1
    assert ck.races[0].kind == "ww"


def test_lock_transfer_establishes_order():
    ck = DynamicChecker(2)
    ck.lock_acquired(0, 9)
    ck.access(0, 5, write=True)
    ck.lock_released(0, 9)
    ck.lock_acquired(1, 9)
    ck.access(1, 5, write=True)
    assert ck.clean


def test_read_write_race_direction_kinds():
    ck = DynamicChecker(2)
    ck.access(0, 5, write=False)
    ck.access(1, 5, write=True)
    assert [r.kind for r in ck.races] == ["rw"]
    ck2 = DynamicChecker(2)
    ck2.access(0, 5, write=True)
    ck2.access(1, 5, write=False)
    assert [r.kind for r in ck2.races] == ["wr"]


def test_map_count_tracking():
    ck = DynamicChecker(1)
    ck.map_acquired(0, 3)
    ck.access(0, 3, write=False)
    ck.unmapped(0, 3)
    ck.access(0, 3, write=False)
    assert [v.kind for v in ck.violations] == ["use-after-unmap"]
