"""Cycle attribution tests (repro.obs.attrib): exactness and structure."""

import pytest

from repro.harness.experiments import trace_run
from repro.obs import attribute
from repro.obs.attrib import BUCKETS, classify_wait, phase_intervals

#: Every paper app in both protocol flavours — attribution must
#: reconcile exactly on all of them (the tentpole acceptance bar).
COMBOS = [
    ("Barnes-Hut", "SC"),
    ("Barnes-Hut", "custom"),
    ("BSC", "SC"),
    ("BSC", "custom"),
    ("EM3D", "static"),
    ("EM3D", "dynamic"),
    ("TSP", "SC"),
    ("TSP", "custom"),
    ("Water", "SC"),
    ("Water", "custom"),
]

_cache = {}


def _run(app, variant, n_procs=4):
    key = (app, variant, n_procs)
    if key not in _cache:
        res, buf = trace_run(app, variant, n_procs=n_procs, capacity=1 << 20)
        assert buf.dropped == 0, "attribution tests need the full event stream"
        _cache[key] = (res, buf, attribute(buf, res.time, n_procs))
    return _cache[key]


@pytest.mark.parametrize("app,variant", COMBOS)
def test_attribution_reconciles_exactly(app, variant):
    res, buf, attr = _run(app, variant)
    assert attr.exact
    assert attr.reconciles()
    assert sum(attr.buckets.values()) == res.time * 4


@pytest.mark.parametrize("app,variant", COMBOS)
def test_per_node_rows_each_sum_to_makespan(app, variant):
    res, _, attr = _run(app, variant)
    assert set(attr.per_node) == set(range(4))
    for nid, row in attr.per_node.items():
        assert sum(row.values()) == res.time, f"node {nid} row does not close"
        assert all(v >= 0 for v in row.values())
        assert set(row) <= set(BUCKETS)


def test_per_phase_partitions_every_cycle():
    res, _, attr = _run("EM3D", "static")
    assert set(attr.per_phase) >= {"setup", "iterate", "collect"}
    total = sum(sum(row.values()) for row in attr.per_phase.values())
    assert total == res.time * 4  # phases tile [0, T) on every node


def test_known_bucket_shapes():
    # The workloads have characteristic wait profiles; attribution
    # should recover them, not just balance the books.
    _, _, em3d = _run("EM3D", "static")
    assert em3d.buckets.get("msg", 0) > 0  # peer ghost-exchange waits
    assert em3d.buckets.get("barrier", 0) > 0
    _, _, tsp = _run("TSP", "SC")
    assert tsp.buckets.get("dir", 0) > 0  # SC read/write round trips
    _, _, bsc = _run("BSC", "SC")
    assert bsc.buckets.get("lock", 0) > 0  # lock-structured queue app


def test_per_region_waits_land_on_real_regions():
    _, buf, attr = _run("TSP", "SC")
    allocated = {ev.data["rid"] for ev in buf.events() if ev.kind == "region.alloc"}
    assert attr.per_region, "SC TSP blocks on region round trips"
    assert set(attr.per_region) <= allocated
    assert all(sum(row.values()) > 0 for row in attr.per_region.values())


def test_per_protocol_split_names_protocols():
    _, _, attr = _run("Water", "custom")
    names = set(attr.per_protocol) - {"-"}
    assert names, "custom Water waits should attribute to named protocols"


def test_classify_wait_buckets():
    assert classify_wait("rpc:ace.sc.read_req")[0] == "dir"
    assert classify_wait("rpc:proto.Migratory.mig_req") == ("msg", None, "Migratory")
    assert classify_wait("rel:ace.sc.write_req")[0] == "dir"
    assert classify_wait("lock:7@2") == ("lock", 7, None)
    assert classify_wait("read:3@1") == ("dir", 3, None)
    assert classify_wait("hw_barrier:5")[0] == "barrier"
    assert classify_wait("done:proc2")[0] == "join"
    assert classify_wait("ctr:4@0") == ("msg", 4, None)
    assert classify_wait("bu:ship")[0] == "msg"
    assert classify_wait("unstructured")[0] == "other"
    assert classify_wait("rpc:barrier.notify")[0] == "barrier"


def test_phase_intervals_tile_and_nest():
    class Ev:
        def __init__(self, ts, kind, data):
            self.ts, self.kind, self.data = ts, kind, data

    evs = [
        Ev(10, "phase.begin", "outer"),
        Ev(20, "phase.begin", "inner"),
        Ev(30, "phase.end", "inner"),
        Ev(40, "phase.end", "outer"),
    ]
    got = phase_intervals(evs, 50)
    assert got == [
        (0, 10, None),
        (10, 20, "outer"),
        (20, 30, "inner"),
        (30, 40, "outer"),
        (40, 50, None),
    ]
    assert got[0][0] == 0 and got[-1][1] == 50
    assert all(a[1] == b[0] for a, b in zip(got, got[1:]))  # no gaps


def test_inexact_when_ring_wrapped():
    res, buf = trace_run("TSP", "SC", n_procs=2, capacity=256)
    assert buf.dropped > 0
    attr = attribute(buf, res.time, 2)  # must not raise despite evictions
    assert not attr.exact
    assert attr.dropped == buf.dropped
