"""Unit tests for the trace ring and histograms (repro.obs.trace)."""

import pytest

from repro.obs import Histogram, TraceBuffer


def test_emit_assigns_monotonic_ids_and_orders_events():
    buf = TraceBuffer(capacity=8)
    a = buf.emit(0, "kernel", "task.spawn", data="t0")
    b = buf.emit(5, "machine", "msg.send", node=1)
    assert (a, b) == (0, 1)
    evs = buf.events()
    assert [ev.eid for ev in evs] == [0, 1]
    assert evs[0].layer == "kernel" and evs[0].kind == "task.spawn"
    assert evs[1].node == 1 and evs[1].parent == -1


def test_ring_drops_oldest_and_counts_drops():
    buf = TraceBuffer(capacity=3)
    for i in range(5):
        buf.emit(i, "l", "k")
    assert len(buf) == 3
    assert buf.dropped == 2
    assert [ev.eid for ev in buf.events()] == [2, 3, 4]  # oldest evicted
    # ids keep increasing across drops
    assert buf.emit(9, "l", "k") == 5


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)


def test_tracer_handle_curries_layer():
    buf = TraceBuffer()
    t = buf.tracer("dsm.ace")
    eid = t.emit(42, "region.state", node=2, data={"rid": 7, "state": "shared"})
    child = t.emit(43, "region.state", node=2, parent=eid)
    evs = buf.events()
    assert all(ev.layer == "dsm.ace" for ev in evs)
    assert evs[1].parent == eid


def test_clear_keeps_id_sequence():
    buf = TraceBuffer()
    buf.emit(0, "l", "k")
    buf.hist("h").add(1)
    buf.clear()
    assert len(buf) == 0 and buf.hists == {} and buf.dropped == 0
    assert buf.emit(1, "l", "k") == 1


def test_hist_is_created_once_per_name():
    buf = TraceBuffer()
    assert buf.hist("rpc.read") is buf.hist("rpc.read")
    assert buf.hist("rpc.read") is not buf.hist("rpc.write")


def test_histogram_exact_moments():
    h = Histogram()
    for v in (0, 1, 5, 100):
        h.add(v)
    assert h.count == 4
    assert h.total == 106
    assert h.min == 0 and h.max == 100
    s = h.summary()
    assert s["mean"] == 26.5
    assert s["min"] == 0 and s["max"] == 100


def test_histogram_percentiles_bucketed_and_clamped():
    h = Histogram()
    for _ in range(99):
        h.add(4)  # bucket 3: [4, 7]
    h.add(20)  # bucket 5: [16, 31]
    assert h.percentile(0.50) == 7  # bucket upper bound
    assert h.percentile(0.99) == 7
    assert h.percentile(1.0) == 20  # clamped to observed max, not 31


def test_histogram_of_zeros():
    h = Histogram()
    h.add(0)
    h.add(0)
    assert h.percentile(0.5) == 0
    assert h.summary()["p99"] == 0


def test_empty_histogram_summary():
    s = Histogram().summary()
    assert s["count"] == 0 and s["mean"] == 0 and s["p50"] == 0


def test_histogram_merge_preserves_percentiles():
    # Feeding two streams into separate histograms and merging must
    # give exactly the same digest as one histogram fed both streams —
    # the property run_summary relies on when it folds per-node RPC
    # hists cluster-wide.
    left, right, combined = Histogram(), Histogram(), Histogram()
    stream_a = [0, 1, 3, 9, 120, 4096]
    stream_b = [2, 2, 7, 513, 513]
    for v in stream_a:
        left.add(v)
        combined.add(v)
    for v in stream_b:
        right.add(v)
        combined.add(v)
    merged = left.copy().merge(right)
    assert merged.count == combined.count
    assert merged.total == combined.total
    assert merged.min == combined.min and merged.max == combined.max
    assert merged.buckets == combined.buckets
    for p in (0.1, 0.5, 0.9, 0.99, 1.0):
        assert merged.percentile(p) == combined.percentile(p)
    assert merged.summary() == combined.summary()


def test_histogram_merge_with_empty_sides():
    h = Histogram()
    h.add(5)
    assert h.copy().merge(Histogram()).summary() == h.summary()
    empty = Histogram()
    assert empty.merge(h).summary() == h.summary()
    # merge returns self, enabling fold chains
    assert (m := Histogram()).merge(h) is m


def test_histogram_copy_is_independent():
    h = Histogram()
    h.add(3)
    c = h.copy()
    c.add(1000)
    assert h.count == 1 and h.max == 3
    assert c.count == 2 and c.max == 1000
