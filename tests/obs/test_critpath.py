"""Critical-path tests (repro.obs.critpath): bounds, composition, what-if."""

import pytest

from repro.harness.experiments import trace_run
from repro.obs import WHAT_IF_PRESETS, critical_path

COMBOS = [
    ("Barnes-Hut", "custom"),
    ("BSC", "SC"),
    ("EM3D", "static"),
    ("EM3D", "dynamic"),
    ("TSP", "SC"),
    ("Water", "SC"),
]

_cache = {}


def _run(app, variant, n_procs=4):
    key = (app, variant, n_procs)
    if key not in _cache:
        res, buf = trace_run(app, variant, n_procs=n_procs, capacity=1 << 20)
        assert buf.dropped == 0
        _cache[key] = (res, buf, critical_path(buf, res.time))
    return _cache[key]


@pytest.mark.parametrize("app,variant", COMBOS)
def test_length_bounded_by_makespan(app, variant):
    res, _, cp = _run(app, variant)
    assert 0 < cp.length <= res.time
    assert cp.orphaned_edges == 0


def test_equality_on_synchronization_bound_run():
    # EM3D static is barrier-synchronized every iteration: a causal
    # chain runs from cycle 0 to the final event, so the critical path
    # *is* the makespan.
    res, _, cp = _run("EM3D", "static")
    assert cp.length == res.time


@pytest.mark.parametrize("app,variant", COMBOS)
def test_composition_sums_to_length(app, variant):
    _, _, cp = _run(app, variant)
    assert sum(cp.by_category.values()) == cp.length
    assert all(w >= 0 for w in cp.by_category.values())


@pytest.mark.parametrize("app,variant", COMBOS)
def test_path_is_contiguous_and_time_ordered(app, variant):
    _, _, cp = _run(app, variant)
    assert cp.path, "a nonempty run has a nonempty path"
    for (src, dst, weight, _cat) in cp.path:
        assert dst.ts - src.ts >= weight >= 0
    for (_, dst, _, _), (nxt_src, _, _, _) in zip(cp.path, cp.path[1:]):
        assert dst.eid == nxt_src.eid  # chain, not a bag of edges


@pytest.mark.parametrize("preset", sorted(WHAT_IF_PRESETS))
def test_what_if_never_exceeds_length(preset):
    _, _, cp = _run("EM3D", "dynamic")
    bound = cp.what_if(WHAT_IF_PRESETS[preset])
    assert 0 <= bound <= cp.length
    assert cp.speedup_bound(WHAT_IF_PRESETS[preset]) >= 1.0


def test_zero_message_latency_helps_message_bound_run():
    _, _, cp = _run("EM3D", "dynamic")
    bound = cp.what_if(WHAT_IF_PRESETS["zero_message_latency"])
    assert bound < cp.length  # wire edges on the path => a real bound


def test_segments_merge_and_cover_path():
    _, _, cp = _run("TSP", "SC")
    segs = cp.segments()
    assert sum(s["cycles"] for s in segs) == cp.length
    assert sum(s["events"] for s in segs) == len(cp.path)
    for a, b in zip(segs, segs[1:]):
        assert a["category"] != b["category"]  # maximal merging


def test_top_segments_annotated_with_phases():
    _, _, cp = _run("EM3D", "static")
    top = cp.top_segments(5)
    assert len(top) == 5
    assert [s["cycles"] for s in top] == sorted((s["cycles"] for s in top), reverse=True)
    assert {s["phase"] for s in top} <= {"setup", "iterate", "collect", "(no phase)"}
    assert any(s["phase"] != "(no phase)" for s in top)
    # compute segments recover their node from the task name
    assert all(s["node"] >= 0 for s in top if s["category"] == "compute")


def test_to_dict_is_json_shaped():
    import json

    res, _, cp = _run("Water", "SC")
    d = cp.to_dict(top_k=3)
    json.dumps(d)  # no TraceEvent leaks
    assert d["length"] == cp.length and d["res_time"] == res.time
    assert len(d["top_segments"]) == 3
    assert set(d["what_if"]) == set(WHAT_IF_PRESETS)


def test_tolerates_wrapped_ring():
    # Satellite regression: with a tiny ring most causal parents are
    # evicted; extraction must skip those edges, count them, and still
    # return a bounded path over the surviving suffix.
    res, buf = trace_run("TSP", "SC", n_procs=4, capacity=256)
    assert buf.dropped > 0
    cp = critical_path(buf, res.time)
    assert cp.orphaned_edges > 0
    assert 0 <= cp.length <= res.time
    assert sum(cp.by_category.values()) == cp.length
