"""Windowed metrics tests (repro.obs.metrics.MetricsWindow)."""

import json

import pytest

from repro.harness.experiments import trace_run
from repro.obs import MetricsWindow, run_summary, to_perfetto


@pytest.fixture(scope="module")
def metered_run():
    metrics = MetricsWindow(width=2048)
    res, buf = trace_run("TSP", "SC", n_procs=4, metrics=metrics)
    return res, buf, metrics


def test_window_width_must_be_positive():
    with pytest.raises(ValueError):
        MetricsWindow(width=0)


def test_observe_unit_counters():
    m = MetricsWindow(width=100)
    m.observe(10, "msg.send", {"category": "a.b", "words": 4})
    m.observe(20, "msg.send", {"category": "a.c", "words": 2})
    m.observe(150, "rpc.return", {"category": "a.b", "lat": 77})
    m.observe(160, "task.block", {"task": "proc0", "on": "read:1@0"})
    m.observe(170, "region.state", {"rid": 3, "state": "shared"})
    m.observe(180, "task.step", "proc0")  # untracked kind: ignored
    rows = m.rows()
    assert [r["window"] for r in rows] == [0, 1]
    assert rows[0] == {
        "window": 0, "start": 0, "end": 100, "msgs": 2, "words": 6,
        "rpcs": 0, "stall": 0, "blocks": 0, "transitions": 0,
        "mix": {"a.b": 1, "a.c": 1}, "states": {}, "rids": {},
    }
    assert rows[1]["stall"] == 77 and rows[1]["blocks"] == 1
    assert rows[1]["transitions"] == 1 and rows[1]["states"] == {"shared": 1}
    assert rows[1]["rids"] == {"3": 1}
    assert m.observed == 5


def test_totals_match_counters(metered_run):
    res, _, metrics = metered_run
    s = metrics.summary(res.time, 4)
    assert s["msgs"] == res.stats.get("msg.total")
    assert s["words"] == res.stats.get("msg.words")
    assert sum(s["mix"].values()) == s["msgs"]
    assert 0 < s["stall_fraction"] < 1


def test_metrics_survive_ring_eviction():
    # The window hangs off emit(), not the ring: totals must match the
    # exact counters even when almost every event was evicted.
    metrics = MetricsWindow(width=2048)
    res, buf = trace_run("TSP", "SC", n_procs=4, capacity=64, metrics=metrics)
    assert buf.dropped > 0 and len(buf) == 64
    s = metrics.summary()
    assert s["msgs"] == res.stats.get("msg.total")
    assert s["words"] == res.stats.get("msg.words")


def test_windows_tile_the_run(metered_run):
    res, _, metrics = metered_run
    rows = metrics.rows()
    assert rows == sorted(rows, key=lambda r: r["window"])
    assert all(r["end"] - r["start"] == metrics.width for r in rows)
    assert rows[-1]["start"] <= res.time
    # per-window stall never exceeds aggregate capacity in that window
    assert all(r["stall"] <= metrics.width * 4 for r in rows)


def test_jsonl_export(metered_run, tmp_path):
    _, _, metrics = metered_run
    path = tmp_path / "metrics.jsonl"
    n = metrics.to_jsonl(path)
    lines = path.read_text().splitlines()
    assert len(lines) == n + 1
    header = json.loads(lines[0])
    assert header["metrics"]["windows"] == n
    first = json.loads(lines[1])
    assert {"window", "start", "end", "msgs", "stall", "mix"} <= set(first)


def test_perfetto_counter_tracks(metered_run, tmp_path):
    _, buf, metrics = metered_run
    path = tmp_path / "metered.perfetto.json"
    to_perfetto(buf, path)
    doc = json.loads(path.read_text())
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters, "attached metrics should emit counter tracks"
    names = {e["name"] for e in counters}
    assert {"msgs/window", "stall/window", "blocks/window"} <= names
    msg_total = sum(e["args"]["msgs"] for e in counters if e["name"] == "msgs/window")
    assert msg_total == metrics.summary()["msgs"]


def test_counter_gaps_get_zero_samples():
    m = MetricsWindow(width=10)
    m.observe(5, "msg.send", {"category": "x", "words": 1})
    m.observe(95, "msg.send", {"category": "x", "words": 1})  # window 9
    counters = m.perfetto_counters()
    msgs = [(e["ts"], e["args"]["msgs"]) for e in counters if e["name"] == "msgs/window"]
    assert (0, 1) in msgs and (90, 1) in msgs
    assert (10, 0) in msgs  # explicit return-to-zero after window 0


def test_run_summary_includes_metrics(metered_run):
    res, buf, metrics = metered_run
    s = run_summary(res, buf)
    assert s["metrics"]["msgs"] == metrics.summary()["msgs"]
    assert "stall_fraction" in s["metrics"]


def test_plain_buffer_has_no_metrics_block():
    res, buf = trace_run("TSP", "custom", n_procs=2)
    assert buf.metrics is None
    assert "metrics" not in run_summary(res, buf)


def test_summary_zero_shape_reports_none_fraction():
    # A degenerate run shape must not divide by zero: the fraction is
    # reported as an explicit None, not omitted and not a crash.
    m = MetricsWindow(width=100)
    assert m.summary(total_cycles=0, n_nodes=4)["stall_fraction"] is None
    assert m.summary(total_cycles=1000, n_nodes=0)["stall_fraction"] is None
    # Empty-row runs with a real shape are a plain 0.0, not None.
    assert m.summary(total_cycles=1000, n_nodes=4)["stall_fraction"] == 0.0
    # No shape given: the key stays absent (callers without a run in
    # hand get totals only, as before).
    assert "stall_fraction" not in m.summary()


def test_tracked_kind_without_dispatch_branch_raises():
    # The TRACKED_KINDS gate and the observe() dispatch must stay in
    # lockstep: a kind that passes the gate but has no branch is a
    # programming error, surfaced loudly instead of miscounted as a
    # region.state transition (the old bare-else behavior).
    import repro.obs.metrics as metrics_mod

    m = MetricsWindow(width=100)
    orig = metrics_mod.TRACKED_KINDS
    metrics_mod.TRACKED_KINDS = orig | {"serve.request"}
    try:
        with pytest.raises(ValueError, match="no dispatch branch"):
            m.observe(10, "serve.request", {})
    finally:
        metrics_mod.TRACKED_KINDS = orig
