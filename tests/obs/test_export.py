"""Exporter and summary tests against a real traced run (TSP, 4 procs)."""

import json

import pytest

from repro.harness.experiments import trace_run
from repro.obs import (
    TraceBuffer,
    message_mix,
    mix_delta,
    per_node_messages,
    run_summary,
    to_jsonl,
    to_perfetto,
)


@pytest.fixture(scope="module")
def tsp_run():
    return trace_run("TSP", "SC", n_procs=4)


def test_traced_run_matches_untraced_cycles(tsp_run):
    from repro.facade import run_spmd
    from repro.harness.experiments import FIG7_WORKLOADS, plan_for
    from repro.apps import tsp

    res, buf = tsp_run
    wl = FIG7_WORKLOADS["TSP"]()
    off = run_spmd(tsp.tsp_program(wl, plan_for("TSP", "SC")), backend="ace", n_procs=4)
    assert res.time == off.time  # tracing never perturbs the simulation
    assert len(buf) > 0 and buf.dropped == 0


def test_causal_parents_link_recv_to_send(tsp_run):
    _, buf = tsp_run
    by_id = {ev.eid: ev for ev in buf.events()}
    recvs = [ev for ev in buf.events() if ev.kind == "msg.recv"]
    assert recvs, "expected message traffic in a TSP SC run"
    for ev in recvs:
        parent = by_id[ev.parent]
        assert parent.kind == "msg.send"
        assert parent.ts <= ev.ts  # causes precede effects
        if "dst" in parent.data:
            assert parent.data["dst"] == ev.node
        else:
            assert ev.node == -1  # replies ride the global track


def test_causal_parents_link_return_to_call(tsp_run):
    _, buf = tsp_run
    by_id = {ev.eid: ev for ev in buf.events()}
    returns = [ev for ev in buf.events() if ev.kind == "rpc.return"]
    assert returns
    for ev in returns:
        call = by_id[ev.parent]
        assert call.kind == "rpc.call"
        assert call.node == ev.node  # round trip starts and ends on the caller
        assert call.ts <= ev.ts


def test_jsonl_roundtrip(tsp_run, tmp_path):
    _, buf = tsp_run
    path = tmp_path / "run.trace.jsonl"
    n = to_jsonl(buf, path)
    lines = path.read_text().splitlines()
    assert len(lines) == n + 1  # header + one line per event
    header = json.loads(lines[0])
    assert header["trace"]["events"] == n
    assert header["trace"]["dropped"] == 0
    assert all(h["count"] > 0 for h in header["trace"]["hists"].values())
    first = json.loads(lines[1])
    assert {"id", "ts", "layer", "kind", "node"} <= set(first)
    # every line is valid JSON with increasing ids
    ids = [json.loads(line)["id"] for line in lines[1:]]
    assert ids == sorted(ids)


def test_perfetto_document_shape(tsp_run, tmp_path):
    _, buf = tsp_run
    path = tmp_path / "run.perfetto.json"
    to_perfetto(buf, path)
    doc = json.loads(path.read_text())
    evs = doc["traceEvents"]
    phases = {e["ph"] for e in evs}
    assert phases <= {"M", "i", "s", "f", "X", "B", "E"}
    # every referenced track has thread_name metadata
    named = {e["tid"] for e in evs if e["ph"] == "M"}
    assert {e["tid"] for e in evs} <= named
    # flow arrows come in s/f pairs sharing an id
    starts = {e["id"] for e in evs if e["ph"] == "s"}
    finishes = {e["id"] for e in evs if e["ph"] == "f"}
    assert starts == finishes and starts
    # RPC round trips became duration slices
    slices = [e for e in evs if e["ph"] == "X"]
    assert slices and all(e["dur"] >= 1 for e in slices)


def test_message_mix_agrees_with_counters(tsp_run):
    res, buf = tsp_run
    mix = message_mix(buf)
    # nothing dropped, so the trace-derived totals equal the counters
    assert sum(slot["count"] for slot in mix.values()) == res.stats.get("msg.total")
    assert sum(slot["words"] for slot in mix.values()) == res.stats.get("msg.words")
    for cat, slot in mix.items():
        assert slot["count"] == res.stats.get("msg." + cat)


def test_mix_delta():
    a = {"x": {"count": 5, "words": 9}, "y": {"count": 2, "words": 2}}
    b = {"x": {"count": 3, "words": 7}, "z": {"count": 1, "words": 1}}
    assert mix_delta(a, b) == {"x": 2, "y": 2, "z": -1}


def test_per_node_messages(tsp_run):
    res, _ = tsp_run
    per_node = per_node_messages(res.stats)
    assert set(per_node) == set(range(4))
    sent = sum(slot["sent"] for slot in per_node.values())
    recv = sum(slot["recv"] for slot in per_node.values())
    assert sent == recv > 0  # every delivered message lands somewhere
    assert sent <= res.stats.get("msg.total")  # replies are not node-addressed


def test_run_summary_fields(tsp_run):
    res, buf = tsp_run
    s = run_summary(res, buf)
    assert s["cycles"] == res.time
    assert s["msg_total"] == res.stats.get("msg.total")
    assert s["stall_total"] == sum(s["stall_cycles"].values()) > 0
    assert list(s["mix"].values()) == sorted(s["mix"].values(), reverse=True)
    assert s["events"] == len(buf)


def test_phase_summary_from_traced_em3d():
    res, buf = trace_run("EM3D", "static", n_procs=2)
    s = run_summary(res, buf)
    assert set(s["phases"]) == {"setup", "iterate", "collect"}
    assert s["phases"]["iterate"]["msg.total"] > 0
    kinds = [ev.kind for ev in buf.events() if ev.layer == "phase"]
    assert kinds == [
        "phase.begin", "phase.end",  # setup
        "phase.begin", "phase.end",  # iterate
        "phase.begin", "phase.end",  # collect
    ]


def test_ring_overflow_reported(tmp_path):
    res, buf = trace_run("TSP", "SC", n_procs=2, capacity=64)
    assert buf.dropped > 0 and len(buf) == 64
    path = tmp_path / "overflow.trace.jsonl"
    to_jsonl(buf, path)
    header = json.loads(path.read_text().splitlines()[0])
    assert header["trace"]["dropped"] == buf.dropped


def test_perfetto_tolerates_wrapped_ring(tmp_path):
    # Regression: a wrapped ring leaves msg.recv / rpc.return events
    # whose causal parent was evicted; the exporter must skip the flow
    # arrow / slice and count the orphan instead of KeyError-ing.
    res, buf = trace_run("TSP", "SC", n_procs=4, capacity=256)
    assert buf.dropped > 0
    path = tmp_path / "wrapped.perfetto.json"
    to_perfetto(buf, path)
    doc = json.loads(path.read_text())
    assert doc["otherData"]["dropped"] == buf.dropped
    assert doc["otherData"]["orphaned_edges"] > 0
    evs = doc["traceEvents"]
    # surviving flow arrows still pair up and reference surviving sends
    starts = {e["id"] for e in evs if e["ph"] == "s"}
    finishes = {e["id"] for e in evs if e["ph"] == "f"}
    assert starts == finishes
    surviving = {ev.eid for ev in buf.events()}
    assert starts <= surviving


def test_orphaned_edges_zero_without_drops(tsp_run):
    from repro.obs import orphaned_edges

    _, buf = tsp_run
    assert buf.dropped == 0
    assert orphaned_edges(buf) == 0
    s = run_summary(*tsp_run)
    assert s["orphaned_edges"] == 0


def test_orphaned_edges_counted_in_summary():
    from repro.obs import orphaned_edges

    res, buf = trace_run("TSP", "SC", n_procs=2, capacity=64)
    n = orphaned_edges(buf)
    assert n > 0
    assert run_summary(res, buf)["orphaned_edges"] == n


def test_cluster_hists_fold_per_node_rpc(tsp_run):
    from repro.obs import cluster_hists, stall_cycles

    _, buf = tsp_run
    merged = cluster_hists(buf)
    per_node = {n: h for n, h in buf.hists.items()
                if n.startswith("node") and ".rpc." in n}
    assert per_node, "traced machine should record per-node RPC hists"
    for name, h in merged.items():
        if not name.startswith("rpc."):
            continue
        parts = [src for key, src in per_node.items()
                 if key.split(".", 1)[1] == name]
        assert h.count == sum(p.count for p in parts)
        assert h.total == sum(p.total for p in parts)
    # stall totals are the merged hist totals, so the cluster-wide
    # number is identical to summing the per-node ones directly
    stalls = stall_cycles(buf)
    assert sum(stalls.values()) == sum(h.total for h in per_node.values())
