"""Golden pin for the observability event stream.

The trace layer promises two things at once:

* **pure observation** — simulated cycles are bit-identical with the
  tracer on and off;
* **deterministic content** — same run, same trace: event count and an
  order-sensitive digest of the full event stream reproduce exactly.

``golden_obs_trace.json`` stores the fingerprint for a small traced
run per case.  A change that moves either the cycles or the digest
altered observable behavior — of the simulation or of the trace
schema — and must be deliberate.  Regenerate only then::

    PYTHONPATH=src python tests/obs/test_golden_obs.py --regen
"""

import hashlib
import json
from pathlib import Path

import pytest

_GOLDEN_PATH = Path(__file__).parent / "golden_obs_trace.json"

CASES = {
    "tsp_sc_4p": ("TSP", "SC", 4),
    "em3d_static_4p": ("EM3D", "static", 4),
}


def _trace_digest(buf) -> str:
    """Order-sensitive sha256 over the canonical event lines."""
    h = hashlib.sha256()
    for ev in buf.events():
        data = json.dumps(ev.data, sort_keys=True)
        h.update(f"{ev.ts} {ev.layer} {ev.kind} {ev.node} {ev.parent} {data}\n".encode())
    return h.hexdigest()


def _capture(case: str) -> dict:
    from repro.harness.experiments import trace_run
    from repro.obs import run_summary

    app, variant, n_procs = CASES[case]
    res, buf = trace_run(app, variant, n_procs=n_procs)
    summary = run_summary(res, buf)
    return {
        "cycles": res.time,
        "events": len(buf),
        "dropped": buf.dropped,
        "trace_sha256": _trace_digest(buf),
        "msg_total": summary["msg_total"],
        "stall_total": summary["stall_total"],
        "phases": sorted(summary["phases"]),
    }


def _untraced_cycles(case: str) -> int:
    from repro.facade import run_spmd
    from repro.harness.experiments import _PROGRAMS, FIG7_WORKLOADS, plan_for

    app, variant, n_procs = CASES[case]
    program_fn, _, _ = _PROGRAMS[app]
    res = run_spmd(
        program_fn(FIG7_WORKLOADS[app](), plan_for(app, variant)),
        backend="ace",
        n_procs=n_procs,
    )
    return res.time


@pytest.mark.parametrize("case", sorted(CASES))
def test_golden_obs_trace(case):
    stored = json.loads(_GOLDEN_PATH.read_text())
    assert case in stored, f"no stored fingerprint for {case!r}; regenerate deliberately"
    got = _capture(case)
    want = stored[case]
    if got != want:
        diff = {k: (want.get(k), got.get(k)) for k in set(want) | set(got)
                if want.get(k) != got.get(k)}
        pytest.fail(f"golden obs mismatch in {case}: {diff}")
    assert got["cycles"] == _untraced_cycles(case)  # tracing is pure observation


def test_no_stale_stored_cases():
    assert set(json.loads(_GOLDEN_PATH.read_text())) == set(CASES)


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    import sys

    if "--regen" not in sys.argv:
        sys.exit("refusing to regenerate without --regen (see module docstring)")
    data = {case: _capture(case) for case in sorted(CASES)}
    _GOLDEN_PATH.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"wrote {_GOLDEN_PATH}: {', '.join(sorted(data))}")
