"""Property-based tests: the kernel is deterministic and conservative."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Delay, Future, Simulator

pytestmark = pytest.mark.slow  # hypothesis sweeps: tier-2

# a task spec: list of delay values; tasks also touch a shared counter
task_specs = st.lists(
    st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
    min_size=1,
    max_size=6,
)


def run_spec(spec):
    sim = Simulator()
    trace = []

    def task(tid, delays):
        for d in delays:
            yield Delay(d)
            trace.append((sim.now, tid))

    for tid, delays in enumerate(spec):
        sim.spawn(task(tid, delays), name=f"t{tid}")
    final = sim.run()
    return final, trace


@given(task_specs)
@settings(max_examples=60, deadline=None)
def test_simulation_is_deterministic(spec):
    assert run_spec(spec) == run_spec(spec)


@given(task_specs)
@settings(max_examples=60, deadline=None)
def test_final_time_is_max_task_time(spec):
    final, trace = run_spec(spec)
    assert final == max(sum(delays) for delays in spec)
    # time never goes backwards in the trace
    times = [t for t, _ in trace]
    assert times == sorted(times)


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_futures_wake_all_waiters_with_the_value(delays):
    sim = Simulator()
    fut = Future()
    got = []

    def waiter(d):
        yield Delay(d)
        value = yield fut
        got.append(value)

    def resolver():
        yield Delay(max(delays) + 1)
        fut.resolve("v")

    for d in delays:
        sim.spawn(waiter(d))
    sim.spawn(resolver())
    sim.run()
    assert got == ["v"] * len(delays)
