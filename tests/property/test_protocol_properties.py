"""Property-based coherence tests on the SC directory engine.

Two classic DSM invariants, driven by randomized SPMD schedules:

* lock-protected read-modify-writes never lose updates, regardless of
  how the nodes' critical sections interleave;
* with barrier-separated phases, every reader observes the latest
  write (sequential consistency across phases).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.facade import run_spmd
from repro.sim import Delay

pytestmark = pytest.mark.slow  # hypothesis sweeps: tier-2

schedules = st.lists(
    st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=5),
    min_size=2,
    max_size=5,
)


@given(schedules, st.sampled_from(["ace", "crl"]))
@settings(max_examples=25, deadline=None)
def test_locked_increments_never_lost(schedule, backend):
    boxes = {}

    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        for pause in schedule[ctx.nid]:
            yield Delay(pause)
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
        yield from ctx.barrier()
        data = yield from ctx.read_region(h)
        return data[0]

    res = run_spmd(program, backend=backend, n_procs=len(schedule))
    expected = float(sum(len(s) for s in schedule))
    assert res.results == [expected] * len(schedule)


@given(
    st.integers(min_value=2, max_value=5),   # procs
    st.integers(min_value=1, max_value=4),   # phases
    st.lists(st.integers(min_value=0, max_value=300), min_size=5, max_size=5),
)
@settings(max_examples=25, deadline=None)
def test_barrier_separated_writes_are_visible(n_procs, phases, pauses):
    boxes = {}

    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        seen = []
        for phase in range(phases):
            writer = phase % n_procs
            if ctx.nid == writer:
                yield Delay(pauses[phase % len(pauses)])
                yield from ctx.start_write(h)
                h.data[0] = phase + 1
                yield from ctx.end_write(h)
            yield from ctx.barrier()
            yield from ctx.start_read(h)
            seen.append(h.data[0])
            yield from ctx.end_read(h)
            yield from ctx.barrier()
        return seen

    res = run_spmd(program, backend="ace", n_procs=n_procs)
    expected = [float(p + 1) for p in range(phases)]
    assert all(seen == expected for seen in res.results)


@given(
    st.integers(min_value=2, max_value=4),
    st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=3, max_size=3),
)
@settings(max_examples=25, deadline=None)
def test_pipelined_deltas_commute(n_procs, contributions):
    """PipelinedWrite's merge is order-independent: the sum of per-node
    contributions lands at home whatever the delivery order."""
    boxes = {}

    def program(ctx):
        sid = yield from ctx.new_space("PipelinedWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        value = contributions[ctx.nid % len(contributions)]
        yield from ctx.start_write(h)
        h.data[0] += value
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.start_read(h)
        out = h.data[0]
        yield from ctx.end_read(h)
        return out

    res = run_spmd(program, backend="ace", n_procs=n_procs)
    expected = sum(contributions[i % len(contributions)] for i in range(n_procs))
    for out in res.results:
        assert abs(out - expected) < 1e-9
