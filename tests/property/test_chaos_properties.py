"""Property-based chaos sweeps: randomized fault plans, exact results.

Hypothesis drives the fault space the way ``repro.verify`` drives the
schedule space: random seeds, rates, and targeted one-shot faults over
a small lock/barrier workload, asserting the final region contents are
those of a fault-free run every time.  The retry + dedup machinery in
:mod:`repro.dsm.faults` is what makes an at-least-once fabric look
exactly-once; these sweeps are its adversary.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import FaultPlan, OneShot
from repro.dsm.faults import LinkFaults
from repro.facade import run_spmd
from repro.sim import Delay

pytestmark = pytest.mark.slow  # hypothesis sweeps: tier-2

N_PROCS = 3
ROUNDS = 3
EXPECTED = [float(N_PROCS * ROUNDS)] + [float(n * ROUNDS) for n in range(N_PROCS)]


def make_prog():
    shared = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            shared["rid"] = yield from ctx.gmalloc(sid, 1 + ctx.n_procs)
        yield from ctx.barrier()
        rid = shared["rid"]
        h = yield from ctx.map(rid)
        for _ in range(ROUNDS):
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            h.data[1 + ctx.nid] += ctx.nid
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
            yield Delay(40)
        yield from ctx.barrier()
        data = yield from ctx.read_region(h)
        return list(data)

    return prog


def run_under(plan):
    return run_spmd(
        make_prog(),
        n_procs=N_PROCS,
        fault_plan=plan,
        barrier_algorithm="dissemination",
    )


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    drop=st.floats(min_value=0.0, max_value=0.08),
    dup=st.floats(min_value=0.0, max_value=0.08),
    delay=st.floats(min_value=0.0, max_value=0.15),
)
@settings(max_examples=25, deadline=None)
def test_random_rate_plans_recover(seed, drop, dup, delay):
    plan = FaultPlan(
        seed=seed,
        default=LinkFaults(drop=drop, dup=dup, delay=delay, delay_cycles=1200),
    )
    res = run_under(plan)
    assert res.results == [EXPECTED] * N_PROCS


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    action=st.sampled_from(["drop", "dup", "delay"]),
    category=st.sampled_from(
        ["ace.sc.read_req", "ace.sc.write_req", "ace.sc.inval", "ace.lock.req"]
    ),
    nth=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=25, deadline=None)
def test_targeted_one_shots_recover(seed, action, category, nth):
    plan = FaultPlan.none(seed)
    plan.one_shots.append(OneShot(action, category=category, nth=nth))
    res = run_under(plan)
    assert res.results == [EXPECTED] * N_PROCS


@given(
    seed=st.integers(min_value=0, max_value=2**31),
    src=st.integers(min_value=0, max_value=N_PROCS - 1),
    dst=st.integers(min_value=0, max_value=N_PROCS - 1),
)
@settings(max_examples=15, deadline=None)
def test_one_lossy_link_recovers(seed, src, dst):
    plan = FaultPlan(seed=seed)
    plan.per_link[(src, dst)] = LinkFaults(drop=0.2, delay=0.2, delay_cycles=2000)
    res = run_under(plan)
    assert res.results == [EXPECTED] * N_PROCS
