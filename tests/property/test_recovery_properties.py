"""Property-based crash-recovery sweeps (tier-2).

Hypothesis drives the crash space the way ``test_chaos_properties``
drives the fault space: random victims, crash cycles, and lossy-link
rates over the shared ring workload (``repro.harness.recovery_workload``),
asserting after every mid-run crash under ``on_crash="recover"`` that

* every survivor's result is **bit-identical** to the crash-free
  expectation (no stale reads survive re-homing: re-granted copies,
  adopted writebacks, and generation fencing must compose with drops,
  duplicates, and delays);
* the victim's task retired with a :class:`Crashed` marker and exactly
  one epoch transition was taken;
* the whole run is **deterministic per seed** — replaying the same plan
  reproduces the same cycle count and the same results.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsm import Crashed, FaultPlan
from repro.dsm.faults import LinkFaults
from repro.facade import run_spmd
from repro.harness.recovery_workload import expected_result, ring_program

pytestmark = pytest.mark.slow  # hypothesis sweeps: tier-2

N_PROCS = 4
ROUNDS = 3
SIZE = 8
PROTOCOLS = ("SC", "Owned", "DynamicUpdate")


def run_crashed(protocol, plan):
    return run_spmd(
        ring_program(protocol, rounds=ROUNDS, size=SIZE),
        n_procs=N_PROCS,
        fault_plan=plan,
        on_crash="recover",
    )


def check_survivors(res, victim):
    for nid in range(N_PROCS):
        if nid == victim:
            assert isinstance(res.results[nid], Crashed)
            assert res.results[nid].nid == victim
        else:
            np.testing.assert_array_equal(
                res.results[nid], expected_result(nid, ROUNDS, SIZE)
            )
    rec = res.backend.transport.recovery
    assert rec.epoch == 1
    assert set(rec.dead) == {victim}


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    victim=st.integers(min_value=0, max_value=N_PROCS - 1),
    at=st.integers(min_value=200, max_value=4000),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_crash_under_recover_never_goes_stale(protocol, victim, at, seed):
    plan = FaultPlan.crash(victim, at=at, seed=seed)
    res = run_crashed(protocol, plan)
    check_survivors(res, victim)


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    victim=st.integers(min_value=0, max_value=N_PROCS - 1),
    at=st.integers(min_value=200, max_value=3000),
    seed=st.integers(min_value=0, max_value=2**16),
    drop=st.floats(min_value=0.0, max_value=0.05),
    dup=st.floats(min_value=0.0, max_value=0.05),
    delay=st.floats(min_value=0.0, max_value=0.10),
)
def test_crash_composes_with_lossy_links(protocol, victim, at, seed, drop, dup, delay):
    faults = LinkFaults(drop=drop, dup=dup, delay=delay, delay_cycles=400)
    plan = FaultPlan.crash(victim, at=at, seed=seed, faults=faults)
    res = run_crashed(protocol, plan)
    check_survivors(res, victim)


@settings(max_examples=10, deadline=None)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    victim=st.integers(min_value=0, max_value=N_PROCS - 1),
    at=st.integers(min_value=200, max_value=3000),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_recovery_is_deterministic_per_seed(protocol, victim, at, seed):
    faults = LinkFaults(drop=0.02, dup=0.02, delay=0.05, delay_cycles=400)
    plan = FaultPlan.crash(victim, at=at, seed=seed, faults=faults)
    a = run_crashed(protocol, plan)
    b = run_crashed(protocol, plan)
    assert a.time == b.time
    for ra, rb in zip(a.results, b.results):
        if isinstance(ra, Crashed):
            assert ra == rb
        else:
            np.testing.assert_array_equal(ra, rb)
