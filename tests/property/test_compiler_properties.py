"""Property-based compiler tests.

* arithmetic soundness: random expressions evaluate like Python;
* optimization soundness: random shared-access programs produce the
  same output and the same final region contents at every level;
* compilation is deterministic (same source → same IR listing).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import OPT_BASE, OPT_DIRECT, OPT_LI, OPT_LI_MC, compile_source, run_compiled

pytestmark = pytest.mark.slow  # hypothesis sweeps: tier-2


# -- random arithmetic expressions ------------------------------------
@st.composite
def arith_exprs(draw, depth=0):
    """(expr_source, python_value) pairs over safe integer arithmetic."""
    if depth >= 3 or draw(st.booleans()):
        n = draw(st.integers(min_value=0, max_value=20))
        return str(n), float(n)
    op = draw(st.sampled_from(["+", "-", "*"]))
    left_src, left_val = draw(arith_exprs(depth=depth + 1))
    right_src, right_val = draw(arith_exprs(depth=depth + 1))
    value = {"+": left_val + right_val, "-": left_val - right_val, "*": left_val * right_val}[op]
    return f"({left_src} {op} {right_src})", value


@given(arith_exprs())
@settings(max_examples=60, deadline=None)
def test_arithmetic_matches_python(pair):
    src, expected = pair
    run = run_compiled(
        compile_source(f"void main() {{ print({src}); }}", opt=OPT_BASE), n_procs=1
    )
    assert run.prints == [(0, expected)]


# -- random shared-access programs -------------------------------------
REGION_SIZE = 6

access_ops = st.lists(
    st.tuples(
        st.sampled_from(["store", "add", "readsum"]),
        st.integers(min_value=0, max_value=REGION_SIZE - 1),
        st.integers(min_value=-9, max_value=9),
    ),
    min_size=1,
    max_size=12,
)


def build_program(ops, protocol):
    lines = [
        "void main() {",
        '    int s = ace_new_space("SC");',
        f'    ace_change_protocol(s, "{protocol}");',
        "    shared double *p;",
        f"    p = ace_gmalloc(s, {REGION_SIZE});",
        "    double acc = 0;",
    ]
    for kind, idx, val in ops:
        if kind == "store":
            lines.append(f"    p[{idx}] = {val};")
        elif kind == "add":
            lines.append(f"    p[{idx}] += {val};")
        else:
            lines.append(f"    for (int i = 0; i < {REGION_SIZE}; i++) {{ acc += p[i]; }}")
    lines.append("    print(acc);")
    lines.append('    bb_put("p", 0, p);')
    lines.append("}")
    return "\n".join(lines)


def oracle(ops):
    mem = [0.0] * REGION_SIZE
    acc = 0.0
    for kind, idx, val in ops:
        if kind == "store":
            mem[idx] = float(val)
        elif kind == "add":
            mem[idx] += float(val)
        else:
            acc += sum(mem)
    return mem, acc


@given(access_ops, st.sampled_from(["SC", "Null", "StaticUpdate", "HomeWrite"]))
@settings(max_examples=40, deadline=None)
def test_all_optimization_levels_agree_with_oracle(ops, protocol):
    src = build_program(ops, protocol)
    mem, acc = oracle(ops)
    for level in (OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT):
        run = run_compiled(compile_source(src, opt=level), n_procs=1)
        assert run.prints == [(0, acc)], level.name
        assert list(run.region_data(run.bb[("p", 0)])) == mem, level.name


@given(access_ops)
@settings(max_examples=30, deadline=None)
def test_compilation_is_deterministic(ops):
    src = build_program(ops, "StaticUpdate")
    assert compile_source(src, opt=OPT_DIRECT).dump() == compile_source(src, opt=OPT_DIRECT).dump()
