"""Unit tests for the backend-neutral facade."""

import pytest

from repro.facade import run_spmd
from repro.machine import MachineConfig


def test_ctx_identity():
    def prog(ctx):
        yield from ctx.compute(1)
        return (ctx.nid, ctx.n_procs)

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [(0, 3), (1, 3), (2, 3)]


def test_compute_charges_cycles():
    def prog(ctx):
        yield from ctx.compute(12345)

    res = run_spmd(prog, backend="ace", n_procs=1)
    assert res.time >= 12345


def test_machine_config_override_applies():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            prog.rid = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier()
        h = yield from ctx.map(prog.rid)
        yield from ctx.start_read(h)
        yield from ctx.end_read(h)
        yield from ctx.barrier()

    slow = run_spmd(
        prog, backend="ace", n_procs=2,
        machine_config=MachineConfig(n_procs=2, network_latency=5000),
    )
    fast = run_spmd(
        prog, backend="ace", n_procs=2,
        machine_config=MachineConfig(n_procs=2, network_latency=10),
    )
    assert slow.time > fast.time


def test_machine_config_nprocs_reconciled():
    """n_procs argument wins over a mismatched config."""
    def prog(ctx):
        yield from ctx.compute(1)
        return ctx.n_procs

    res = run_spmd(prog, backend="ace", n_procs=4,
                   machine_config=MachineConfig(n_procs=32))
    assert res.results == [4] * 4


def test_read_write_region_helpers():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 3)
        h = yield from ctx.map(rid)
        yield from ctx.write_region(h, [9, 8, 7])
        data = yield from ctx.read_region(h)
        return list(data)

    res = run_spmd(prog, backend="crl", n_procs=1)
    assert res.results[0] == [9.0, 8.0, 7.0]


def test_result_exposes_backend_and_stats():
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        yield from ctx.gmalloc(sid, 1)

    res = run_spmd(prog, backend="ace", n_procs=1)
    assert res.backend.name == "ace"
    assert res.stats.get("ace.gmalloc") == 1


def test_crl_backend_spaces_are_inert_tokens():
    def prog(ctx):
        s1 = yield from ctx.new_space("SC")
        s2 = yield from ctx.new_space("SC")
        yield from ctx.barrier(s1)
        yield from ctx.barrier(s2)
        return (s1, s2)

    res = run_spmd(prog, backend="crl", n_procs=2)
    assert all(r == (0, 1) for r in res.results)


@pytest.mark.parametrize("backend", ["ace", "crl"])
def test_unmap_supported_on_both_backends(backend):
    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 2)
        h = yield from ctx.map(rid)
        yield from ctx.unmap(h)
        h2 = yield from ctx.map(rid)  # remap from the unmapped-region cache
        data = yield from ctx.read_region(h2)
        return list(data)

    res = run_spmd(prog, backend=backend, n_procs=1)
    assert res.results[0] == [0.0, 0.0]
