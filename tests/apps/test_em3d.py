"""EM3D integration tests: numeric correctness on every backend × plan,
and the §3.3 protocol-ladder ordering."""

import numpy as np
import pytest

from repro.apps import em3d
from repro.facade import run_spmd

SMALL = em3d.EM3DWorkload(n_e=24, n_h=24, degree=3, pct_remote=0.3, n_iters=3, seed=7)


def run_em3d(workload, plan, backend="ace", n_procs=4):
    res = run_spmd(em3d.em3d_program(workload, plan), backend=backend, n_procs=n_procs)
    e, h = em3d.collect_results(res, workload)
    return res, e, h


@pytest.mark.parametrize(
    "backend,plan",
    [
        ("crl", em3d.SC_PLAN),
        ("ace", em3d.SC_PLAN),
        ("ace", em3d.DYNAMIC_PLAN),
        ("ace", em3d.STATIC_PLAN),
    ],
)
def test_matches_reference(backend, plan):
    res, e, h = run_em3d(SMALL, plan, backend=backend)
    e_ref, h_ref = em3d.reference(SMALL, 4)
    np.testing.assert_allclose(e, e_ref, rtol=1e-12)
    np.testing.assert_allclose(h, h_ref, rtol=1e-12)


def test_single_proc_matches_reference():
    res, e, h = run_em3d(SMALL, em3d.SC_PLAN, n_procs=1)
    e_ref, h_ref = em3d.reference(SMALL, 1)
    np.testing.assert_allclose(e, e_ref, rtol=1e-12)


def test_protocol_ladder_ordering():
    """§3.3: dynamic update beats SC; static update beats dynamic."""
    wl = em3d.EM3DWorkload(n_e=32, n_h=32, degree=4, pct_remote=0.5, n_iters=4, seed=3)
    t_sc = run_em3d(wl, em3d.SC_PLAN)[0].time
    t_dyn = run_em3d(wl, em3d.DYNAMIC_PLAN)[0].time
    t_static = run_em3d(wl, em3d.STATIC_PLAN)[0].time
    assert t_static < t_dyn < t_sc


def test_static_update_read_traffic_is_map_only():
    """After first-map fetches, static update reads generate no messages."""
    res, _, _ = run_em3d(SMALL, em3d.STATIC_PLAN)
    fetches = res.stats.get("msg.proto.StaticUpdate.fetch")
    # every read in the main loop is a local hit: fetch count == distinct
    # remote mappings, far fewer than total reads
    total_reads = res.stats.get("ace.start_read")
    assert fetches > 0
    assert fetches < total_reads / 5


def test_determinism_same_seed_same_result():
    res1, e1, h1 = run_em3d(SMALL, em3d.STATIC_PLAN)
    res2, e2, h2 = run_em3d(SMALL, em3d.STATIC_PLAN)
    assert res1.time == res2.time
    np.testing.assert_array_equal(e1, e2)


def test_workload_paper_parameters():
    wl = em3d.EM3DWorkload.paper()
    assert (wl.n_e, wl.n_h, wl.degree, wl.n_iters) == (1000, 1000, 10, 100)
    assert wl.pct_remote == 0.20
