"""BSC integration tests."""

import numpy as np
import pytest

from repro.apps import bsc
from repro.facade import run_spmd

SMALL = bsc.BSCWorkload(n_block_cols=6, block=3, band=2, seed=9)


def run_bsc(workload, plan, backend="ace", n_procs=3):
    res = run_spmd(bsc.bsc_program(workload, plan), backend=backend, n_procs=n_procs)
    return res, bsc.collect_results(res, workload)


@pytest.mark.parametrize(
    "backend,plan",
    [("crl", bsc.SC_PLAN), ("ace", bsc.SC_PLAN), ("ace", bsc.CUSTOM_PLAN)],
)
def test_factor_matches_numpy_cholesky(backend, plan):
    res, L = run_bsc(SMALL, plan, backend=backend)
    ref = bsc.reference(SMALL)
    np.testing.assert_allclose(L, ref, rtol=1e-9, atol=1e-10)


def test_factor_reconstructs_matrix():
    _, L = run_bsc(SMALL, bsc.SC_PLAN)
    a = bsc.make_matrix(SMALL)
    np.testing.assert_allclose(L @ L.T, a, rtol=1e-9, atol=1e-8)


def test_matrix_is_banded_and_spd():
    a = bsc.make_matrix(SMALL)
    np.testing.assert_array_equal(a, a.T)
    assert np.all(np.linalg.eigvalsh(a) > 0)
    half_band = SMALL.band * SMALL.block
    for i in range(SMALL.n):
        for j in range(SMALL.n):
            if abs(i - j) > half_band:
                assert a[i, j] == 0.0


def test_custom_plan_marginal_improvement():
    """§5.2: BSC's custom protocol wins only marginally (bulk transfer
    dominates either way)."""
    wl = bsc.BSCWorkload(n_block_cols=8, block=4, band=3, seed=13)
    t_sc = run_bsc(wl, bsc.SC_PLAN, n_procs=4)[0].time
    t_custom = run_bsc(wl, bsc.CUSTOM_PLAN, n_procs=4)[0].time
    assert t_custom <= t_sc
    # "marginal": less than 25% improvement
    assert t_sc / t_custom < 1.25


def test_single_proc_matches_reference():
    res, L = run_bsc(SMALL, bsc.SC_PLAN, n_procs=1)
    np.testing.assert_allclose(L, bsc.reference(SMALL), rtol=1e-9, atol=1e-10)


def test_lock_ordering_no_deadlock_many_procs():
    wl = bsc.BSCWorkload(n_block_cols=10, block=2, band=4, seed=21)
    res, L = run_bsc(wl, bsc.SC_PLAN, n_procs=5)
    np.testing.assert_allclose(L, bsc.reference(wl), rtol=1e-9, atol=1e-10)
