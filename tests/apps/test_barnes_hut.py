"""Barnes-Hut integration tests."""

import numpy as np
import pytest

from repro.apps import barnes_hut as bh
from repro.facade import run_spmd

SMALL = bh.BHWorkload(n_bodies=24, n_steps=2, seed=17)


def run_bh(workload, plan, backend="ace", n_procs=4):
    res = run_spmd(bh.bh_program(workload, plan), backend=backend, n_procs=n_procs)
    return res, bh.collect_results(res, workload)


@pytest.mark.parametrize(
    "backend,plan",
    [("crl", bh.SC_PLAN), ("ace", bh.SC_PLAN), ("ace", bh.CUSTOM_PLAN)],
)
def test_matches_reference(backend, plan):
    res, state = run_bh(SMALL, plan, backend=backend)
    ref = bh.reference(SMALL)
    np.testing.assert_allclose(state, ref, rtol=1e-10, atol=1e-12)


def test_theta_zero_equals_direct_sum():
    """With theta=0 the tree walk degenerates to exact pairwise forces."""
    wl = bh.BHWorkload(n_bodies=10, n_steps=1, theta=0.0, seed=3)
    bodies = bh.init_bodies(wl)
    pos = bodies[:, bh.POS].copy()
    mass = bodies[:, bh.MASS].copy()
    root = bh.build_tree(pos, mass)
    for i in range(wl.n_bodies):
        force, _ = bh.compute_force(root, i, pos, wl.theta, wl.eps)
        direct = np.zeros(3)
        for j in range(wl.n_bodies):
            if j == i:
                continue
            d = pos[j] - pos[i]
            r2 = d @ d + wl.eps**2
            direct += mass[j] * d / (r2 * np.sqrt(r2))
        np.testing.assert_allclose(force, direct, rtol=1e-9)


def test_tree_mass_conservation():
    wl = bh.BHWorkload(n_bodies=50, seed=2)
    bodies = bh.init_bodies(wl)
    root = bh.build_tree(bodies[:, bh.POS], bodies[:, bh.MASS])
    assert root.mass == pytest.approx(bodies[:, bh.MASS].sum())


def test_dynamic_update_plan_is_faster():
    """Figure 7b's Barnes-Hut row: dynamic update beats SC."""
    wl = bh.BHWorkload(n_bodies=32, n_steps=2, seed=6)
    t_sc = run_bh(wl, bh.SC_PLAN, n_procs=4)[0].time
    t_custom = run_bh(wl, bh.CUSTOM_PLAN, n_procs=4)[0].time
    assert t_custom < t_sc


def test_dynamic_update_removes_read_misses():
    wl = bh.BHWorkload(n_bodies=32, n_steps=2, seed=6)
    res_sc, _ = run_bh(wl, bh.SC_PLAN, n_procs=4)
    res_custom, _ = run_bh(wl, bh.CUSTOM_PLAN, n_procs=4)
    assert res_sc.stats.get("ace.sc.read_miss") > 0
    assert res_custom.stats.get("ace.sc.read_miss") == 0


def test_single_proc_matches_reference():
    res, state = run_bh(SMALL, bh.SC_PLAN, n_procs=1)
    np.testing.assert_allclose(state, bh.reference(SMALL), rtol=1e-10, atol=1e-12)


def test_paper_workload_parameters():
    wl = bh.BHWorkload.paper()
    assert (wl.n_bodies, wl.n_steps, wl.theta, wl.eps) == (16384, 4, 1.0, 0.5)
