"""TSP integration tests."""

import math

import pytest

from repro.apps import tsp
from repro.facade import run_spmd

SMALL = tsp.TSPWorkload(n_cities=7, prefix_depth=2, seed=5)


def run_tsp(workload, plan, backend="ace", n_procs=4):
    return run_spmd(tsp.tsp_program(workload, plan), backend=backend, n_procs=n_procs)


@pytest.mark.parametrize(
    "backend,plan",
    [("crl", tsp.SC_PLAN), ("ace", tsp.SC_PLAN), ("ace", tsp.CUSTOM_PLAN)],
)
def test_finds_optimal_tour(backend, plan):
    res = run_tsp(SMALL, plan, backend=backend)
    expected = tsp.reference(SMALL)
    for best, _jobs in res.results:
        assert best == pytest.approx(expected)


def test_all_jobs_processed_exactly_once():
    res = run_tsp(SMALL, tsp.CUSTOM_PLAN)
    total_jobs = sum(j for _, j in res.results)
    assert total_jobs == SMALL.n_jobs


def test_job_decode_is_a_bijection():
    wl = tsp.TSPWorkload(n_cities=6, prefix_depth=2)
    seen = {tuple(tsp.decode_job(wl, j)) for j in range(wl.n_jobs)}
    assert len(seen) == wl.n_jobs == math.perm(5, 2)
    for prefix in seen:
        assert len(set(prefix)) == len(prefix)
        assert all(1 <= c < wl.n_cities for c in prefix)


def test_custom_counter_protocol_is_faster():
    """Figure 7b's TSP row: the counter protocol wins."""
    wl = tsp.TSPWorkload(n_cities=7, prefix_depth=2, seed=11)
    t_sc = run_tsp(wl, tsp.SC_PLAN, n_procs=8).time
    t_custom = run_tsp(wl, tsp.CUSTOM_PLAN, n_procs=8).time
    assert t_custom < t_sc


def test_counter_protocol_reduces_messages():
    wl = tsp.TSPWorkload(n_cities=7, prefix_depth=2, seed=11)
    res_sc = run_tsp(wl, tsp.SC_PLAN, n_procs=8)
    res_custom = run_tsp(wl, tsp.CUSTOM_PLAN, n_procs=8)
    assert res_custom.stats.get("msg.total") < res_sc.stats.get("msg.total")


def test_single_proc_runs():
    res = run_tsp(SMALL, tsp.SC_PLAN, n_procs=1)
    assert res.results[0][0] == pytest.approx(tsp.reference(SMALL))


def test_paper_workload_parameters():
    wl = tsp.TSPWorkload.paper()
    assert wl.n_cities == 12
    assert wl.n_jobs == math.perm(11, 3)
