"""Water integration tests."""

import numpy as np
import pytest

from repro.apps import water
from repro.facade import run_spmd

SMALL = water.WaterWorkload(n_molecules=12, n_steps=2, seed=8)


def run_water(workload, plan, backend="ace", n_procs=4):
    res = run_spmd(water.water_program(workload, plan), backend=backend, n_procs=n_procs)
    return res, water.collect_results(res, workload)


@pytest.mark.parametrize(
    "backend,plan",
    [("crl", water.SC_PLAN), ("ace", water.SC_PLAN), ("ace", water.CUSTOM_PLAN)],
)
def test_matches_reference(backend, plan):
    res, state = run_water(SMALL, plan, backend=backend)
    ref = water.reference(SMALL)
    np.testing.assert_allclose(state, ref, rtol=1e-9, atol=1e-12)


def test_phase_switching_plan_is_faster():
    """§2.2: null (intra) + pipelined update (inter) ≈ 2x over SC."""
    wl = water.WaterWorkload(n_molecules=16, n_steps=2, seed=4)
    t_sc = run_water(wl, water.SC_PLAN, n_procs=4)[0].time
    t_custom = run_water(wl, water.CUSTOM_PLAN, n_procs=4)[0].time
    assert t_custom < t_sc


def test_forces_actually_accumulate_across_owners():
    """Sanity: remote force contributions reach the owner's molecule."""
    wl = water.WaterWorkload(n_molecules=8, n_steps=1, cutoff=10.0, seed=1)
    _, state = run_water(wl, water.CUSTOM_PLAN, n_procs=4)
    ref = water.reference(wl)
    # with a huge cutoff every pair interacts; forces must be nonzero
    assert np.abs(ref[:, water.FRC]).max() > 0
    np.testing.assert_allclose(state, ref, rtol=1e-9, atol=1e-12)


def test_single_proc_matches_reference():
    _, state = run_water(SMALL, water.SC_PLAN, n_procs=1)
    np.testing.assert_allclose(state, water.reference(SMALL), rtol=1e-9, atol=1e-12)


def test_paper_workload_parameters():
    wl = water.WaterWorkload.paper()
    assert (wl.n_molecules, wl.n_steps) == (512, 3)
