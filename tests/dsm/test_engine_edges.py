"""Edge-case tests for the directory engine: grant-ack races, deferred
downgrades, flushes from every copy state, queue fairness."""

import numpy as np

from repro.crl import CRLRuntime
from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator


def run(n_procs, *programs):
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=n_procs))
    crl = CRLRuntime(machine)
    tasks = [sim.spawn(prog(crl, i), name=f"p{i}") for i, prog in enumerate(programs)]
    sim.run()
    return sim, machine, [t.done.result() for t in tasks]


def test_three_writer_storm_no_lost_updates():
    """The grant-in-flight race regression: back-to-back exclusive
    grants to different nodes must serialize through grant-acks."""
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        out = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        return out

    def writer(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        for _ in range(7):
            yield from crl.rgn_start_write(nid, h)
            h.data[0] += 1
            yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    _, machine, results = run(4, home, writer, writer, writer)
    assert results[0] == 21.0
    assert machine.stats.get("msg.crl.grant_ack") > 0


def test_deferred_downgrade_while_writing():
    """A read request recalls a dirty copy whose owner is mid-write:
    the downgrade waits for end_write and the reader sees the value."""
    rid_box = {}
    order = []

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def writer(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_write(nid, h)
        yield Delay(50_000)  # hold the write while the reader asks
        h.data[0] = 5.0
        order.append("end_write")
        yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    def reader(crl, nid):
        yield from crl.barrier(nid)
        yield Delay(4_000)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        order.append("read")
        out = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)
        return out

    _, machine, results = run(3, home, writer, reader)
    assert order == ["end_write", "read"]
    assert results[2] == 5.0
    assert machine.stats.get("crl.inval_deferred") == 1


def test_flush_of_clean_shared_copy_just_deregisters():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 2)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [1.0, 2.0]
        yield from crl.rgn_end_write(nid, h)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        region = crl.regions.get(rid)
        assert np.all(region.home_data == [1.0, 2.0])

    def reader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        yield from crl.rgn_end_read(nid, h)
        yield from crl.rgn_flush(nid, rid_box["rid"])
        yield from crl.barrier(nid)

    _, machine, _ = run(2, home, reader)
    # flush of a clean copy carries no region data, only metadata
    words = machine.stats.get("msg.words")
    assert machine.stats.get("crl.flush") == 1


def test_flush_of_invalid_copy_is_noop():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        yield from crl.rgn_flush(nid, rid)  # home flush: nothing to do
        return "ok"

    _, _, results = run(1, prog)
    assert results[0] == "ok"


def test_queue_fairness_under_mixed_load():
    """Readers and writers queued at a busy entry are served FIFO —
    nobody starves and the final value reflects all writes."""
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        out = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        return out

    def mixed(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        for i in range(5):
            if (i + nid) % 2 == 0:
                yield from crl.rgn_start_write(nid, h)
                h.data[0] += 1
                yield from crl.rgn_end_write(nid, h)
            else:
                yield from crl.rgn_start_read(nid, h)
                yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)

    _, _, results = run(5, home, mixed, mixed, mixed, mixed)
    # nodes 1..4: writes at (i+nid)%2==0 -> nodes 1,3 write 2 each; 2,4 write 3 each
    assert results[0] == 10.0
