"""Crash recovery: a crash-stop is a handled event, not a stall.

DESIGN.md §15's contract, tested end to end on the shared ring
workload (``repro.harness.recovery_workload``):

* **recover** — the victim's task retires with a ``Crashed`` marker,
  its regions re-home to the rank-order successor, and every survivor
  finishes with results bit-identical to the crash-free run;
* **abort** — the run raises a prompt StallError at failure-detector
  declaration, naming the crashed node first in ``report.suspects``;
* **no false positives** — a lossy-but-crash-free fabric under an
  armed recovery manager never declares anyone dead;
* **zero cost when off** — without ``on_crash`` no recovery machinery
  is even constructed;
* the dedup tables the fabric leans on are **bounded** (watermark+age
  GC) rather than growing for the whole run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dsm import Crashed, FaultPlan, StallError
from repro.dsm.faults import DedupTable, LinkFaults, SeenOnce, _GC_EVERY, _GC_LAG
from repro.facade import run_spmd
from repro.harness.recovery_workload import (
    expected_result,
    locked_counter_program,
    ring_program,
)
from repro.obs import TraceBuffer

N_PROCS = 4
ROUNDS = 4
SIZE = 8
PROTOCOLS = ("SC", "Owned", "DynamicUpdate")


def run_ring(protocol, plan=None, on_crash=None, **kwargs):
    return run_spmd(
        ring_program(protocol, rounds=ROUNDS, size=SIZE),
        n_procs=N_PROCS,
        fault_plan=plan,
        on_crash=on_crash,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# recover: survivors finish bit-identical to the crash-free baseline
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_recover_smoke(protocol):
    victim = 1
    plan = FaultPlan.crash(victim, at=1500, seed=3)
    res = run_ring(protocol, plan, on_crash="recover")
    for nid in range(N_PROCS):
        if nid == victim:
            assert isinstance(res.results[nid], Crashed)
            assert res.results[nid].nid == victim
        else:
            np.testing.assert_array_equal(
                res.results[nid], expected_result(nid, ROUNDS, SIZE)
            )
    summary = res.backend.transport.recovery.summary()
    assert summary["mode"] == "recover"
    assert summary["epoch"] == 1
    assert summary["dead"] == [victim]
    assert summary["live"] == [0, 2, 3]
    (event,) = summary["events"]
    assert event["crash_at"] == 1500
    assert event["rehomed_regions"] == 1  # the region homed at the victim


def test_recover_is_deterministic():
    plan = FaultPlan.crash(2, at=2200, seed=7)
    a = run_ring("SC", plan, on_crash="recover")
    b = run_ring("SC", plan, on_crash="recover")
    assert a.time == b.time
    for ra, rb in zip(a.results, b.results):
        if isinstance(ra, Crashed):
            assert ra == rb
        else:
            np.testing.assert_array_equal(ra, rb)


def test_recover_emits_trace_events():
    buf = TraceBuffer()
    plan = FaultPlan.crash(1, at=1500, seed=3)
    run_ring("SC", plan, on_crash="recover", tracer=buf)
    kinds = {ev.kind for ev in buf.events() if ev.kind.startswith("recovery.")}
    assert {"recovery.dead", "recovery.epoch", "recovery.rehome", "recovery.complete"} <= kinds
    dead = [ev for ev in buf.events() if ev.kind == "recovery.dead"]
    assert dead[0].node == 1
    assert dead[0].data["epoch"] == 1


# ---------------------------------------------------------------------------
# abort: prompt, suspect-attributed failure
# ---------------------------------------------------------------------------


def test_abort_names_the_crashed_node():
    victim = 2
    plan = FaultPlan.crash(victim, at=1500, seed=3)
    with pytest.raises(StallError) as exc:
        run_ring("SC", plan, on_crash="abort")
    report = exc.value.report
    assert report.suspects[0] == victim
    assert "failure detector" in report.reason
    # Prompt: declared one detection window after the crash, an order
    # of magnitude before retry exhaustion (~10^5-cycle watchdog trips).
    assert "crash-stop at cycle 1500" in report.reason


# ---------------------------------------------------------------------------
# lock recovery: a dead holder's lock is broken, not leaked
# ---------------------------------------------------------------------------


def test_dead_lock_holder_is_broken():
    victim, increments = 1, 3
    plan = FaultPlan.crash(victim, at=900, seed=5)
    res = run_spmd(
        locked_counter_program(increments),
        n_procs=N_PROCS,
        fault_plan=plan,
        on_crash="recover",
    )
    survivors = [res.results[n] for n in range(N_PROCS) if n != victim]
    assert isinstance(res.results[victim], Crashed)
    # Every survivor completes all its increments and agrees on the sum.
    assert len(set(survivors)) == 1
    assert survivors[0] >= increments * (N_PROCS - 1)
    summary = res.backend.transport.recovery.summary()
    (event,) = summary["events"]
    assert event["broken_locks"] >= 1


# ---------------------------------------------------------------------------
# no false positives / zero cost when off
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_armed_recovery_has_no_false_positives(protocol):
    plan = FaultPlan.canonical(0)  # lossy fabric, nobody crashes
    res = run_ring(protocol, plan, on_crash="recover")
    rec = res.backend.transport.recovery
    assert rec.epoch == 0
    assert not rec.dead
    for nid in range(N_PROCS):
        np.testing.assert_array_equal(
            res.results[nid], expected_result(nid, ROUNDS, SIZE)
        )


def test_no_recovery_machinery_without_on_crash():
    res = run_ring("SC")
    assert res.backend.transport.recovery is None
    res = run_ring("SC", FaultPlan.canonical(1))
    assert res.backend.transport.recovery is None


def test_on_crash_requires_a_fault_plan():
    with pytest.raises(ValueError):
        run_ring("SC", on_crash="recover")


# ---------------------------------------------------------------------------
# dedup tables stay bounded (watermark + age GC)
# ---------------------------------------------------------------------------


class _StubTransport:
    """The slice of Transport the dedup structures touch."""

    class _Sim:
        now = 0

    class _Kit:
        def __init__(self):
            self.pending: dict = {}
            self._seq = 0

    class _Stats:
        @staticmethod
        def counter_ref():
            from collections import defaultdict

            return defaultdict(int)

    def __init__(self):
        self.sim = self._Sim()
        self.kit = self._Kit()
        self.stats = self._Stats()

    def reply(self, fut, value=None, payload_words=0, category="am.reply"):
        pass


def test_dedup_table_plateaus():
    tr = _StubTransport()
    table = DedupTable(tr, "test")
    step = 200  # cycles between settled requests

    def drive(n):
        for _ in range(n):
            seq = tr.kit._seq
            fut = object()
            assert table.admit(0, seq, fut)
            tr.kit._seq = seq + 1  # settled: nothing pending below _seq
            table.reply(fut, None)
            tr.sim.now += step

    warm = _GC_LAG // step + _GC_EVERY  # entries young enough to keep + GC slack
    drive(4 * warm)
    size_a = len(table._sent)
    drive(4 * warm)
    size_b = len(table._sent)
    assert size_a <= warm + 1
    assert size_b <= warm + 1  # plateau: doubling the run does not grow it
    # Correctness survives GC: a recent settled duplicate still replays.
    assert not table.admit(0, tr.kit._seq - 1, object())


def test_seen_once_plateaus():
    tr = _StubTransport()
    seen = SeenOnce(tr)
    step = 200

    def drive(n):
        for _ in range(n):
            seq = tr.kit._seq
            assert seen.first(0, seq)
            assert not seen.first(0, seq)  # immediate duplicate is caught
            tr.kit._seq = seq + 1
            tr.sim.now += step

    warm = _GC_LAG // step + _GC_EVERY
    drive(4 * warm)
    size_a = len(seen._seen)
    drive(4 * warm)
    assert size_a <= warm + 1
    assert len(seen._seen) <= warm + 1


def test_seen_once_without_transport_is_unbounded_but_works():
    seen = SeenOnce()
    assert seen.first(0, 0)
    assert not seen.first(0, 0)
    assert seen.first(0, None)  # local calls bypass
    assert seen.first(0, None)
