"""Unit tests for the home-based queue locks."""

import pytest

from repro.dsm import LockService
from repro.dsm.locks import LockError
from repro.machine import Machine, MachineConfig
from repro.memory import RegionDirectory
from repro.sim import Delay, Simulator


def setup(n=4):
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=n))
    regions = RegionDirectory()
    locks = LockService(machine, regions)
    return sim, machine, regions, locks


def test_mutual_exclusion_and_fifo():
    sim, machine, regions, locks = setup()
    rid = regions.alloc(home=0, size=1).rid
    order = []

    def proc(nid):
        yield Delay(nid)  # deterministic staggered requests
        yield from locks.acquire(nid, rid)
        order.append(("acq", nid, sim.now))
        yield Delay(1000)
        order.append(("rel", nid, sim.now))
        yield from locks.release(nid, rid)

    sim.run_all((proc(i) for i in range(4)), prefix="p")
    # Critical sections never overlap and grants follow request order.
    holders = [e[1] for e in order if e[0] == "acq"]
    assert holders == [0, 1, 2, 3]
    for i in range(0, len(order) - 1, 2):
        assert order[i][0] == "acq" and order[i + 1][0] == "rel"
        assert order[i][1] == order[i + 1][1]


def test_uncontended_home_lock_is_fast():
    sim, machine, regions, locks = setup(n=1)
    rid = regions.alloc(home=0, size=1).rid

    def proc(nid):
        yield from locks.acquire(nid, rid)
        yield from locks.release(nid, rid)

    sim.run_all([proc(0)])
    assert machine.stats.get("msg.lock.req") == 0  # no network traffic


def test_remote_lock_costs_messages():
    sim, machine, regions, locks = setup(n=2)
    rid = regions.alloc(home=0, size=1).rid

    def proc(nid):
        if nid == 1:
            yield from locks.acquire(nid, rid)
            yield from locks.release(nid, rid)
        else:
            yield Delay(0)

    sim.run_all((proc(i) for i in range(2)))
    assert machine.stats.get("msg.lock.req") == 1
    assert machine.stats.get("msg.lock.grant") == 1
    assert machine.stats.get("msg.lock.rel") == 1


def test_reacquire_raises():
    sim, machine, regions, locks = setup(n=1)
    rid = regions.alloc(home=0, size=1).rid

    def proc(nid):
        yield from locks.acquire(nid, rid)
        yield from locks.acquire(nid, rid)

    sim.spawn(proc(0))
    with pytest.raises(LockError, match="re-acquired"):
        sim.run()


def test_release_free_lock_raises():
    sim, machine, regions, locks = setup(n=1)
    rid = regions.alloc(home=0, size=1).rid

    def proc(nid):
        yield from locks.release(nid, rid)

    sim.spawn(proc(0))
    with pytest.raises(LockError, match="free lock"):
        sim.run()


def test_foreign_release_raises():
    sim, machine, regions, locks = setup(n=2)
    rid = regions.alloc(home=0, size=1).rid

    def holder(nid):
        yield from locks.acquire(nid, rid)
        yield Delay(10_000)
        yield from locks.release(nid, rid)

    def thief(nid):
        yield Delay(100)
        yield from locks.release(nid, rid)

    sim.spawn(holder(0))
    sim.spawn(thief(1))
    with pytest.raises(LockError, match="held by"):
        sim.run()


def test_contention_counter():
    sim, machine, regions, locks = setup(n=3)
    rid = regions.alloc(home=0, size=1).rid

    def proc(nid):
        yield Delay(nid)
        yield from locks.acquire(nid, rid)
        yield Delay(500)
        yield from locks.release(nid, rid)

    sim.run_all((proc(i) for i in range(3)))
    assert machine.stats.get("lock.contended") == 2
