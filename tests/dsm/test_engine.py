"""Unit tests for the MSI directory engine (via the CRL runtime wrapper)."""

import numpy as np
import pytest

from repro.crl import CRLRuntime
from repro.dsm import ProtocolError
from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator


def run(n_procs, *programs):
    """Run one generator-factory per node against a fresh CRL runtime."""
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=n_procs))
    crl = CRLRuntime(machine)
    tasks = [sim.spawn(prog(crl, i), name=f"p{i}") for i, prog in enumerate(programs)]
    sim.run()
    return sim, machine, [t.done.result() for t in tasks]


def test_create_map_write_read_single_node():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 4)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [1, 2, 3, 4]
        yield from crl.rgn_end_write(nid, h)
        yield from crl.rgn_start_read(nid, h)
        out = list(h.data)
        yield from crl.rgn_end_read(nid, h)
        yield from crl.rgn_unmap(nid, h)
        return out

    _, _, results = run(1, prog)
    assert results[0] == [1.0, 2.0, 3.0, 4.0]


def test_remote_read_sees_home_write():
    rid_box = {}

    def writer(crl, nid):
        rid = yield from crl.rgn_create(nid, 3)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [7, 8, 9]
        yield from crl.rgn_end_write(nid, h)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def reader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        out = list(h.data)
        yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)
        return out

    _, _, results = run(2, writer, reader)
    assert results[1] == [7.0, 8.0, 9.0]


def test_remote_write_then_home_read_recalls_dirty_copy():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 2)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        out = list(h.data)
        yield from crl.rgn_end_read(nid, h)
        return out

    def remote(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [41, 42]
        yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    _, _, results = run(2, home, remote)
    assert results[0] == [41.0, 42.0]


def test_write_invalidates_all_sharers():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)  # regions exist
        yield from crl.barrier(nid)  # everyone cached it
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_write(nid, h)
        h.data[0] = 99
        yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)  # write visible
        return None

    def reader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        first = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        yield from crl.rgn_start_read(nid, h)
        second = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        return (first, second)

    _, machine, results = run(4, home, reader, reader, reader)
    for first, second in results[1:]:
        assert first == 0.0
        assert second == 99.0
    assert machine.stats.get("crl.recall") >= 1


def test_two_remote_writers_serialize():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        total = h.data[0]
        yield from crl.rgn_end_read(nid, h)
        return total

    def incrementer(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        for _ in range(10):
            yield from crl.rgn_start_write(nid, h)
            h.data[0] += 1
            yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    _, _, results = run(3, home, incrementer, incrementer)
    assert results[0] == 20.0


def test_upgrade_from_shared_avoids_data_transfer():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 64)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def upgrader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        yield from crl.rgn_end_read(nid, h)
        yield from crl.rgn_start_write(nid, h)
        h.data[0] = 5
        yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    _, machine, _ = run(2, home, upgrader)
    assert machine.stats.get("msg.crl.upgrade_ack") == 1


def test_deferred_invalidation_waits_for_reader():
    """A reader holding a region defers the invalidation until end_read,
    and the writer only proceeds afterwards (sequential consistency)."""
    rid_box = {}
    events = []

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def reader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_read(nid, h)
        yield Delay(100_000)  # hold the region a long time
        events.append(("end_read", nid))
        yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)

    def writer(crl, nid):
        yield from crl.barrier(nid)
        yield Delay(5_000)  # let the reader get there first
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_write(nid, h)
        events.append(("got_write", nid))
        h.data[0] = 1
        yield from crl.rgn_end_write(nid, h)
        yield from crl.barrier(nid)

    _, machine, _ = run(3, home, reader, writer)
    assert events.index(("end_read", 1)) < events.index(("got_write", 2))
    assert machine.stats.get("crl.inval_deferred") == 1


def test_read_hit_after_fetch_is_local():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def reader(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        for _ in range(5):
            yield from crl.rgn_start_read(nid, h)
            yield from crl.rgn_end_read(nid, h)
        yield from crl.barrier(nid)

    _, machine, _ = run(2, home, reader)
    assert machine.stats.get("crl.read_miss") == 1
    assert machine.stats.get("crl.read_hit") == 4


def test_end_read_without_start_raises():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_end_read(nid, h)

    with pytest.raises(ProtocolError, match="end_read without"):
        run(1, prog)


def test_end_write_without_start_raises():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_end_write(nid, h)

    with pytest.raises(ProtocolError, match="end_write without"):
        run(1, prog)


def test_unmap_with_open_access_raises():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        yield from crl.rgn_unmap(nid, h)

    with pytest.raises(ProtocolError, match="open accesses"):
        run(1, prog)


def test_unmap_unmapped_raises():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_unmap(nid, h)
        yield from crl.rgn_unmap(nid, h)

    with pytest.raises(ProtocolError, match="unmap of unmapped"):
        run(1, prog)


def test_flush_pushes_dirty_copy_home():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 2)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)
        region = crl.regions.get(rid)
        assert np.all(region.home_data == [3.0, 4.0])

    def remote(crl, nid):
        yield from crl.barrier(nid)
        h = yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [3, 4]
        yield from crl.rgn_end_write(nid, h)
        yield from crl.rgn_flush(nid, rid_box["rid"])
        yield from crl.barrier(nid)

    run(2, home, remote)


def test_nested_reads_allowed():
    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_read(nid, h)
        yield from crl.rgn_start_read(nid, h)
        yield from crl.rgn_end_read(nid, h)
        yield from crl.rgn_end_read(nid, h)

    run(1, prog)


def test_cold_map_of_remote_region_costs_lookup_message():
    rid_box = {}

    def home(crl, nid):
        rid = yield from crl.rgn_create(nid, 1)
        rid_box["rid"] = rid
        yield from crl.barrier(nid)
        yield from crl.barrier(nid)

    def mapper(crl, nid):
        yield from crl.barrier(nid)
        yield from crl.rgn_map(nid, rid_box["rid"])
        yield from crl.barrier(nid)

    _, machine, _ = run(2, home, mapper)
    assert machine.stats.get("msg.crl.map_lookup") == 1


def test_many_regions_many_nodes_all_values_correct():
    """Each node creates a region, writes its id, everyone reads everything."""
    rids = {}

    def prog(crl, nid):
        rid = yield from crl.rgn_create(nid, 2)
        h = yield from crl.rgn_map(nid, rid)
        yield from crl.rgn_start_write(nid, h)
        h.data[:] = [nid, nid * 10]
        yield from crl.rgn_end_write(nid, h)
        rids[nid] = rid
        yield from crl.barrier(nid)
        seen = {}
        for owner, rid2 in sorted(rids.items()):
            g = yield from crl.rgn_map(nid, rid2)
            yield from crl.rgn_start_read(nid, g)
            seen[owner] = (g.data[0], g.data[1])
            yield from crl.rgn_end_read(nid, g)
        return seen

    _, _, results = run(4, *([prog] * 4))
    for seen in results:
        assert seen == {0: (0, 0), 1: (1, 10), 2: (2, 20), 3: (3, 30)}
