"""Unit tests for barrier algorithms."""

import pytest

from repro.dsm import BarrierService
from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator


def run_barriers(algorithm, n_procs, iterations=3, stagger=7):
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=n_procs))
    svc = BarrierService(machine, algorithm=algorithm)
    log = []

    def proc(nid):
        for it in range(iterations):
            yield Delay(1 + (nid * stagger) % 23)
            yield from svc.wait(nid)
            log.append((it, nid, sim.now))

    sim.run_all((proc(i) for i in range(n_procs)), prefix="p")
    return log, machine


@pytest.mark.parametrize("algorithm", ["hw", "dissemination"])
@pytest.mark.parametrize("n_procs", [1, 2, 3, 8])
def test_no_node_passes_barrier_early(algorithm, n_procs):
    log, _ = run_barriers(algorithm, n_procs)
    # Every node's iteration-k release must be >= every node's iteration-k
    # arrival; equivalently, iteration k release times >= max arrival.
    for it in range(3):
        releases = sorted(t for i, n, t in log if i == it)
        # all of iteration k releases happen before any iteration k+1 release
        next_releases = [t for i, n, t in log if i == it + 1]
        if next_releases:
            assert max(releases) <= min(next_releases)


def test_hw_barrier_single_release_time():
    log, _ = run_barriers("hw", 5)
    for it in range(3):
        times = {t for i, n, t in log if i == it}
        assert len(times) == 1


def test_dissemination_uses_messages_not_control_network():
    _, machine = run_barriers("dissemination", 8, iterations=2)
    assert machine.stats.get("msg.barrier.notify") > 0
    assert machine.stats.get("barrier.hw_arrive") == 0


def test_dissemination_message_count_is_n_log_n():
    _, machine = run_barriers("dissemination", 8, iterations=1, stagger=0)
    # 8 nodes, ceil(log2(8)) = 3 rounds -> 24 notifies per episode
    assert machine.stats.get("msg.barrier.notify") == 24


def test_unknown_algorithm_rejected():
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=2))
    with pytest.raises(ValueError, match="unknown barrier"):
        BarrierService(machine, algorithm="tree-of-lies")
