"""Fault-injection fabric: determinism, recovery, and stall reporting.

The chaos contract (DESIGN.md §9) has three legs, each tested here:

* **Determinism** — a :class:`~repro.dsm.faults.FaultPlan` is a seeded
  value object: the same plan over the same program yields the same
  cycles and the same fault counts, so every chaos failure replays
  from its artifact alone.
* **Recovery** — under drop/duplicate/delay the retry + dedup
  machinery keeps the at-least-once fabric semantically exactly-once:
  final results equal the fault-free run.
* **Liveness** — faults the protocol cannot mask (a dead link) raise a
  structured :class:`~repro.dsm.faults.StallError` naming the stuck
  region and home node instead of hanging the simulation.

Plus the zero-cost boundary: with no fault plan, no fault machinery is
even constructed and the reliable fast paths stay installed.
"""

from __future__ import annotations

import json

import pytest

from repro.dsm import FaultPlan, OneShot, RetryPolicy, StallError
from repro.dsm.faults import LinkFaults
from repro.facade import run_spmd
from repro.sim import Delay
from repro.sim.errors import DeadlockError

N_PROCS = 3
ROUNDS = 4


def make_counter_prog():
    """Lock-protected increments on one shared region, soft barriers.

    Every fault category gets exercised: mapping, read/write grants,
    invalidations, lock traffic, and dissemination-barrier notifies all
    cross the (possibly lossy) data network.  The ``shared`` dict is a
    host-side closure all nodes see (the repo's rid-sharing idiom).
    """
    shared = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            shared["rid"] = yield from ctx.gmalloc(sid, 1 + ctx.n_procs)
        yield from ctx.barrier()
        rid = shared["rid"]
        h = yield from ctx.map(rid)
        for _ in range(ROUNDS):
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            h.data[1 + ctx.nid] += ctx.nid
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
            yield Delay(50)
        yield from ctx.barrier()
        data = yield from ctx.read_region(h)
        return list(data)

    return prog


def run_counter(plan=None, n_procs: int = N_PROCS, **kwargs):
    return run_spmd(
        make_counter_prog(),
        n_procs=n_procs,
        fault_plan=plan,
        barrier_algorithm="dissemination",
        **kwargs,
    )


EXPECTED = [float(N_PROCS * ROUNDS)] + [float(n * ROUNDS) for n in range(N_PROCS)]


# ---------------------------------------------------------------------------
# plan as a value object
# ---------------------------------------------------------------------------


def test_plan_constructors_and_describe():
    plan = FaultPlan.canonical(7)
    assert plan.seed == 7
    assert plan.default.any
    assert not FaultPlan.none().default.any
    assert "drop" in plan.describe()
    dead = FaultPlan.dead_link(1, 0)
    assert dead.link_down == {(1, 0): 0}


def test_plan_json_round_trips_link_keys():
    plan = FaultPlan.drop_retry(3)
    plan.per_link[(2, 0)] = LinkFaults(drop=0.5)
    plan.link_down[(1, 0)] = 100
    plan.one_shots.append(OneShot("delay", category="ace.sc.read_req", nth=2))
    blob = json.loads(plan.to_json())
    assert blob["seed"] == 3
    assert "2->0" in blob["per_link"]
    assert "1->0" in blob["link_down"]
    assert blob["one_shots"][0]["action"] == "delay"


def test_one_shot_validates_action():
    with pytest.raises(ValueError):
        OneShot("explode")


def test_retry_policy_backoff_caps():
    pol = RetryPolicy(timeout=100, max_timeout=400, max_attempts=5)
    assert [pol.timeout_for(a) for a in range(1, 6)] == [100, 200, 400, 400, 400]


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_same_plan_same_run():
    a = run_counter(FaultPlan.canonical(5))
    b = run_counter(FaultPlan.canonical(5))
    assert a.time == b.time
    assert a.backend.transport.fault_counts() == b.backend.transport.fault_counts()
    assert a.results == b.results == [EXPECTED] * N_PROCS


def test_different_seeds_inject_differently():
    runs = [run_counter(FaultPlan.canonical(s)) for s in range(4)]
    assert all(r.results == [EXPECTED] * N_PROCS for r in runs)
    # Schedules should not all collapse onto one timeline.
    assert len({r.time for r in runs}) > 1


# ---------------------------------------------------------------------------
# recovery: at-least-once fabric, exactly-once semantics
# ---------------------------------------------------------------------------


def test_canonical_plan_recovers_exactly_once():
    res = run_counter(FaultPlan.canonical(0))
    stats = res.stats
    assert res.results == [EXPECTED] * N_PROCS
    # The plan must actually have injected something for this to prove.
    assert stats.get("fault.drop") > 0
    assert stats.get("fault.dup") > 0
    assert stats.get("fault.delay") > 0
    assert stats.get("rel.retry") > 0


def test_drop_heavy_plan_recovers():
    res = run_counter(FaultPlan.drop_retry(1, drop=0.10))
    assert res.results == [EXPECTED] * N_PROCS
    assert res.stats.get("fault.drop") > 0


def test_one_shot_drop_triggers_exactly_one_retry():
    plan = FaultPlan.none()
    plan.one_shots.append(OneShot("drop", category="ace.sc.write_req"))
    res = run_counter(plan)
    assert res.results == [EXPECTED] * N_PROCS
    assert res.stats.get("fault.drop") == 1
    # At least the dropped call retries; a request merely queued past
    # its timeout behind lock contention may add benign extra retries
    # (at-least-once is safe — dedup makes delivery exactly-once).
    assert res.stats.get("rel.retry") >= 1


def test_faults_observable_in_trace():
    from repro.obs import TraceBuffer

    buf = TraceBuffer()
    res = run_counter(FaultPlan.canonical(0), tracer=buf)
    assert res.results == [EXPECTED] * N_PROCS
    kinds = {ev.kind for ev in buf.events() if ev.layer == "faults"}
    assert "fault.drop" in kinds
    assert "rel.retry" in kinds


# ---------------------------------------------------------------------------
# liveness: silent stalls become structured reports
# ---------------------------------------------------------------------------


def test_dead_link_raises_stall_report():
    # Default (hw) barrier: the control network is fault-exempt, so
    # what the dead 1->0 link strands is region traffic — the report
    # must name the stuck region and its home node.
    with pytest.raises(StallError) as exc:
        run_spmd(make_counter_prog(), n_procs=N_PROCS, fault_plan=FaultPlan.dead_link(1, 0))
    report = exc.value.report
    assert isinstance(exc.value, DeadlockError)
    assert "unacknowledged" in report.reason
    calls = [c for c in report.in_flight if c["src"] == 1 and c["dst"] == 0]
    assert calls, f"no 1->0 call in report: {report.in_flight}"
    assert any(c["region"] is not None for c in calls)
    # The directory dump lists non-idle entries only; a stranded lock
    # request can leave every home entry idle, so just check the shape.
    assert isinstance(report.directory, list)
    # The report serializes: CI uploads it as an artifact.
    blob = json.loads(report.to_json())
    assert blob["reason"] == report.reason
    # And the human summary names the stuck home.
    assert "home" in report.summary()


def test_crashed_node_stalls_survivors_with_report():
    plan = FaultPlan.none()
    plan.crashes[2] = 0  # node 2 never sends or receives a message
    with pytest.raises(StallError):
        run_counter(plan)


# ---------------------------------------------------------------------------
# zero-cost boundary
# ---------------------------------------------------------------------------


def test_no_plan_constructs_no_fault_machinery():
    res = run_counter()
    transport = res.backend.transport
    assert transport.reliable
    assert type(transport).__name__ != "FaultTransport"
    engine = res.backend.runtime.sc_engine
    assert not hasattr(engine.directory, "_dedup")
    assert not hasattr(engine.cache, "_inval_done")


def test_none_plan_matches_fault_free_results():
    base = run_counter()
    wrapped = run_counter(FaultPlan.none())
    assert wrapped.results == base.results
    assert wrapped.backend.transport.fault_counts() == {}
