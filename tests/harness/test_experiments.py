"""Smoke tests for the experiment harness (small proc counts so they
stay fast; the full-size runs live in benchmarks/)."""

from repro.harness import by_app, fig7a_rows, fig7b_rows, format_table, table3_rows
from repro.harness.experiments import FIG7_WORKLOADS, Row, TABLE4_KERNELS


def test_workload_and_kernel_tables_cover_all_five_benchmarks():
    expected = {"Barnes-Hut", "BSC", "EM3D", "TSP", "Water"}
    assert set(FIG7_WORKLOADS) == expected
    assert set(TABLE4_KERNELS) == expected
    assert {name for name, _, _ in table3_rows()} == expected


def test_fig7a_small_run_has_all_rows():
    rows = fig7a_rows(n_procs=4)
    d = by_app(rows)
    assert set(d) == set(FIG7_WORKLOADS)
    for v in d.values():
        assert set(v) == {"crl", "ace"}
        assert v["crl"] > 0 and v["ace"] > 0


def test_fig7b_small_run_custom_never_slower_overall():
    d = by_app(fig7b_rows(n_procs=4))
    for app, v in d.items():
        assert v["SC"] >= v["custom"] * 0.95, app


def test_format_table_alignment():
    rows = [Row("EM3D", "SC", 123), Row("EM3D", "custom", 45)]
    text = format_table("t", ["app", "variant", "cycles"], rows)
    lines = text.splitlines()
    assert lines[0] == "t"
    assert "app" in lines[1] and "variant" in lines[1]
    assert len({len(line) for line in lines[3:]}) == 1  # aligned columns
