"""The parallel sweep driver: matrix construction, cell determinism,
merged-artifact schema, and bench/chaos interoperability."""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "tools"))

import sweep  # noqa: E402


def test_build_matrix_cross_product():
    cells = sweep.build_matrix(["TSP", "EM3D"], [2, 4], ["none", "canonical"], [0, 1])
    # pairs: TSP-SC, EM3D-SC, EM3D-dynamic, EM3D-static; "none" cells
    # collapse the seed axis (a fault-free run has no seed to vary)
    assert len(cells) == 4 * 2 * (1 + 2)
    assert all(set(sweep.CELL_KEYS) <= set(c) for c in cells)
    none_cells = [c for c in cells if c["plan"] == "none"]
    assert all(c["seed"] == 0 for c in none_cells)


def test_run_cell_records_measurements():
    rec = sweep.run_cell(dict(app="TSP", variant="SC", procs=2, plan="none", seed=0))
    assert rec["stalled"] is False
    assert rec["cycles"] > 0
    assert rec["events"] > 0
    assert rec["faults"]["drop"] == 0


def test_run_cell_deterministic_and_pool_invisible():
    """The same cell must yield identical physics run over run — and
    the pool path (jobs>1) must match the serial path exactly."""
    cell = dict(app="TSP", variant="SC", procs=2, plan="canonical", seed=1)
    a = sweep.run_cell(cell)
    b = sweep.run_cell(cell)
    assert (a["cycles"], a["events"], a["faults"]) == (b["cycles"], b["events"], b["faults"])

    cells = [
        dict(app="TSP", variant="SC", procs=2, plan="none", seed=0),
        dict(app="TSP", variant="SC", procs=2, plan="canonical", seed=0),
    ]
    serial, _ = sweep.sweep(cells, jobs=1)
    parallel, _ = sweep.sweep(cells, jobs=2)
    for s, p in zip(serial, parallel):
        assert (s["cycles"], s["events"]) == (p["cycles"], p["events"])


def test_merged_artifact_is_bench_comparable():
    """The suites.sweep block must satisfy bench.compare()'s schema."""
    import bench

    cells = [dict(app="TSP", variant="SC", procs=2, plan="none", seed=0)]
    records, wall = sweep.sweep(cells, jobs=1)
    report = sweep.merge(records, wall, jobs=1)
    suite = report["suites"]["sweep"]
    assert suite["events"] == records[0]["events"]
    assert suite["rows"] == [["TSP", "SC", 2, "none", 0, records[0]["cycles"]]]
    # identical artifacts gate clean through bench's comparator
    lines = bench.compare(report, report, gate=True)
    assert lines and "cycles identical" in lines[0]
    assert not any("REGRESSED" in line or "DIFFER" in line for line in lines)
    # and the whole report is JSON-serializable as produced
    json.dumps(report)


def test_smoke_matrix_cli(tmp_path):
    out = tmp_path / "sweep.json"
    rc = sweep.main(["--smoke", "--jobs", "2", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert len(report["cells"]) == 4  # TSP+EM3D x SC x {none, canonical seed 0}
    assert all(not c["stalled"] for c in report["cells"])
    faulted = [c for c in report["cells"] if c["plan"] == "canonical"]
    assert faulted and all(
        c["faults"]["drop"] + c["faults"]["dup"] + c["faults"]["delay"] > 0
        for c in faulted
    )


def test_chaos_from_sweep_roundtrip(tmp_path):
    """chaos --from-sweep must verify a fresh sweep artifact clean."""
    import chaos

    out = tmp_path / "sweep.json"
    rc = sweep.main(
        ["--apps", "TSP", "--procs", "2", "--seeds", "0", "--jobs", "1",
         "--out", str(out)]
    )
    assert rc == 0
    rc = chaos.main(["--from-sweep", str(out), "--out", str(tmp_path / "artifacts")])
    assert rc == 0


@pytest.mark.slow
def test_compare_serial_full_matrix(tmp_path):
    """16-cell acceptance shape: pool and serial physics identical."""
    cells = sweep.build_matrix(["TSP", "EM3D"], [4], ["none", "canonical"], [0, 1, 2])
    assert len(cells) == 16
    records, _ = sweep.sweep(cells, jobs=4)
    assert sweep.compare_serial(cells, records) == []
