"""Differential oracle: the closure backend vs the tree-walking interpreter.

The closure codegen (DESIGN.md §12) must be *bit-identical* to the
interpreter — same simulated cycles, same results, same prints and
bulletin-board contents, same kernel event counts, same sanitizer
verdicts.  These tests run every Table 4 kernel at every optimization
level under both backends and compare everything observable.  Any
divergence is a codegen bug by definition: the interpreter is the
specification.
"""

import pytest

from repro.compiler import OPT_BASE, compile_source, run_compiled
from repro.compiler.driver import BACKENDS
from repro.harness.experiments import TABLE4_KERNELS, TABLE4_LEVELS

APPS = sorted(TABLE4_KERNELS)
LEVEL_IDS = [lvl.name for lvl in TABLE4_LEVELS]

#: nodes for the oracle runs — small enough for tier 1, large enough
#: to exercise remote fetches and barrier fan-in on every kernel
N_PROCS = 4


def _observe(src, opt, host, sanitize):
    """Run ``src`` under both backends; return their observable states."""
    out = {}
    for backend in BACKENDS:
        prog = compile_source(src, opt=opt, sanitize=sanitize, backend=backend)
        run = run_compiled(prog, n_procs=N_PROCS, host_data=host)
        out[backend] = {
            "time": run.time,
            "results": run.results,
            "prints": run.prints,
            "bb": dict(run.bb),
            "events": run.run_result.machine.sim.events,
            "sanitize": prog.pass_stats.get("sanitize"),
        }
    return out


@pytest.mark.parametrize("level", TABLE4_LEVELS, ids=LEVEL_IDS)
@pytest.mark.parametrize("app", APPS)
def test_source_kernels_bit_identical(app, level):
    """5 kernels x 4 levels: closures == interp on every observable."""
    spec = TABLE4_KERNELS[app]
    wl = spec["wl"]
    out = _observe(spec["source"](wl), level, spec["host"](wl), sanitize=True)
    assert out["closures"] == out["interp"]
    # both backends saw the same two clean sanitizer phases
    assert out["closures"]["sanitize"] == [
        "post-lowering",
        f"post-optimization ({level.name})",
    ]


@pytest.mark.parametrize("app", APPS)
def test_hand_kernels_bit_identical(app):
    """The hand-optimized (runtime-level) variants, both backends.

    Hand kernels manage MAP/START/END themselves and legitimately
    violate the *strict* source-level discipline the sanitizer enforces
    (deliberate path imbalance etc.), so they run unsanitized — what
    matters here is backend equivalence, not discipline.
    """
    spec = TABLE4_KERNELS[app]
    wl = spec["wl"]
    out = _observe(spec["hand"](wl), OPT_BASE, spec["host"](wl), sanitize=False)
    assert out["closures"] == out["interp"]


def test_runtime_errors_identical():
    """Error paths agree too: same exception type, same message."""
    from repro.compiler.errors import AceRuntimeErr

    src = """
    int main() {
        double x[4];
        int i;
        i = 7;
        x[i] = 1.0;
        return 0;
    }
    """
    messages = {}
    for backend in BACKENDS:
        prog = compile_source(src, backend=backend)
        with pytest.raises(AceRuntimeErr) as exc:
            run_compiled(prog, n_procs=2)
        messages[backend] = str(exc.value)
    assert messages["closures"] == messages["interp"]
    assert "out of bounds" in messages["closures"]
