"""End-to-end execution of compiled AceC on the simulated Ace runtime."""

import pytest

from repro.compiler import (
    OPT_BASE,
    OPT_DIRECT,
    OPT_LI,
    OPT_LI_MC,
    AceRuntimeErr,
    compile_source,
    run_compiled,
)

ALL_LEVELS = [OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT]


def run_src(src, opt=OPT_BASE, n_procs=1, host_data=None):
    return run_compiled(compile_source(src, opt=opt), n_procs=n_procs, host_data=host_data)


def test_hello_arithmetic():
    out = run_src(
        """
        void main() {
            double x = 3;
            double y = x * x + 0.5;
            print(y);
        }
        """
    )
    assert out.prints == [(0, 9.5)]


def test_control_flow_fibonacci_recursion():
    out = run_src(
        """
        double fib(double n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        void main() { print(fib(12)); }
        """
    )
    assert out.prints == [(0, 144.0)]


def test_local_arrays_and_loops():
    out = run_src(
        """
        void main() {
            double a[10];
            for (int i = 0; i < 10; i++) { a[i] = i * i; }
            double s = 0;
            for (int i = 0; i < 10; i++) { s += a[i]; }
            print(s);
        }
        """
    )
    assert out.prints == [(0, 285.0)]


def test_builtin_math():
    out = run_src(
        """
        void main() {
            print(sqrt(49));
            print(idiv(17, 5));
            print(imod(17, 5));
            print(min(2, 3) + max(2, 3));
            print(fabs(0 - 8));
        }
        """
    )
    values = [v for _, v in out.prints]
    assert values == [7.0, 3.0, 2.0, 5.0, 8.0]


def test_spmd_identity_and_barrier():
    out = run_src(
        """
        void main() {
            print(my_proc());
            ace_barrier(ace_new_space("SC"));
            print(num_procs());
        }
        """,
        n_procs=3,
    )
    assert sorted(v for _, v in out.prints) == [0.0, 1.0, 2.0, 3.0, 3.0, 3.0]


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=lambda o: o.name)
def test_shared_memory_roundtrip_all_levels(opt):
    out = run_src(
        """
        void main() {
            int s = ace_new_space("SC");
            shared double *p;
            p = ace_gmalloc(s, 4);
            for (int i = 0; i < 4; i++) { p[i] = i * 10; }
            double total = 0;
            for (int i = 0; i < 4; i++) { total += p[i]; }
            print(total);
        }
        """,
        opt=opt,
    )
    assert out.prints == [(0, 60.0)]


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=lambda o: o.name)
def test_producer_consumer_across_nodes(opt):
    out = run_src(
        """
        void main() {
            int s = ace_new_space("SC");
            shared double *p;
            if (my_proc() == 0) {
                p = ace_gmalloc(s, 2);
                p[0] = 41;
                p[1] = 1;
                bb_put("rid", 0, p);
            }
            ace_barrier(s);
            p = bb_get("rid", 0);
            double v = p[0] + p[1];
            ace_barrier(s);
            print(v);
        }
        """,
        opt=opt,
        n_procs=4,
    )
    assert sorted(v for _, v in out.prints) == [42.0] * 4


def test_host_data_feeds_program():
    out = run_src(
        """
        void main() { print(host_data("A", 2)); }
        """,
        host_data={"A": [1.0, 2.0, 3.5]},
    )
    assert out.prints == [(0, 3.5)]


def test_region_data_accessor():
    out = run_src(
        """
        void main() {
            int s = ace_new_space("SC");
            shared double *p;
            p = ace_gmalloc(s, 3);
            p[0] = 7; p[1] = 8; p[2] = 9;
            bb_put("r", 0, p);
        }
        """
    )
    rid = out.bb[("r", 0)]
    assert list(out.region_data(rid)) == [7.0, 8.0, 9.0]


def test_division_by_zero_raises():
    with pytest.raises(AceRuntimeErr, match="division by zero"):
        run_src("void main() { double x = 1 / 0; }")


def test_array_bounds_checked():
    with pytest.raises(AceRuntimeErr, match="out of bounds"):
        run_src("void main() { double a[3]; a[5] = 1; }")


def test_bb_get_before_put_raises():
    with pytest.raises(AceRuntimeErr, match="not published"):
        run_src('void main() { double x = bb_get("nope", 0); }')


def test_locks_serialize_counter():
    out = run_src(
        """
        void main() {
            int s = ace_new_space("SC");
            shared double *c;
            if (my_proc() == 0) {
                c = ace_gmalloc(s, 1);
                bb_put("c", 0, c);
            }
            ace_barrier(s);
            c = bb_get("c", 0);
            for (int i = 0; i < 5; i++) {
                ace_lock(c);
                c[0] = c[0] + 1;
                ace_unlock(c);
            }
            ace_barrier(s);
            if (my_proc() == 0) { print(c[0]); }
        }
        """,
        n_procs=4,
    )
    assert out.prints == [(0, 20.0)]


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=lambda o: o.name)
def test_change_protocol_from_acec(opt):
    out = run_src(
        """
        void main() {
            int s = ace_new_space("SC");
            shared double *p;
            if (my_proc() == 0) {
                p = ace_gmalloc(s, 1);
                bb_put("p", 0, p);
            }
            ace_barrier(s);
            ace_change_protocol(s, "DynamicUpdate");
            p = bb_get("p", 0);
            if (my_proc() == 1) { p[0] = 5; }
            ace_barrier(s);
            double v = p[0];
            ace_barrier(s);
            print(v);
        }
        """,
        opt=opt,
        n_procs=2,
    )
    assert sorted(v for _, v in out.prints) == [5.0, 5.0]


def test_optimization_levels_monotonically_faster():
    """More passes never slow the program down (and LI/MC/DC each help here)."""
    src = """
    void main() {
        int s = ace_new_space("SC");
        ace_change_protocol(s, "StaticUpdate");
        shared double *p;
        p = ace_gmalloc(s, 16);
        for (int it = 0; it < 10; it++) {
            double acc = 0;
            for (int i = 0; i < 16; i++) { acc += p[i]; }
            p[0] = acc;
        }
        ace_barrier(s);
    }
    """
    times = [run_src(src, opt=o).time for o in ALL_LEVELS]
    assert times[0] >= times[1] >= times[2] >= times[3]
    assert times[3] < times[0]
