"""Compiler robustness: every shipped AceC kernel parses and compiles at
every level; misuse is caught; analysis terminates on recursion."""

import pytest

from repro.apps import acec_sources as K
from repro.compiler import (
    OPT_BASE,
    OPT_DIRECT,
    AceRuntimeErr,
    compile_source,
    run_compiled,
)
from repro.protocols.base import ProtocolMisuse

KERNEL_SOURCES = [
    K.em3d_source(K.EM3DKernelWL()),
    K.em3d_hand_source(K.EM3DKernelWL()),
    K.bsc_source(K.BSCKernelWL()),
    K.bsc_hand_source(K.BSCKernelWL()),
    K.water_source(K.WaterKernelWL()),
    K.water_hand_source(K.WaterKernelWL()),
    K.bh_source(K.BHKernelWL()),
    K.bh_hand_source(K.BHKernelWL()),
    K.tsp_source(K.TSPKernelWL()),
    K.tsp_source(K.TSPKernelWL(), hand=True),
]


@pytest.mark.parametrize("idx", range(len(KERNEL_SOURCES)))
def test_every_kernel_compiles_at_base_and_full(idx):
    src = KERNEL_SOURCES[idx]
    for opt in (OPT_BASE, OPT_DIRECT):
        prog = compile_source(src, opt=opt)
        assert "main" in prog.ir.funcs


def test_analysis_terminates_on_mutual_recursion():
    src = """
    double even(double n) { if (n == 0) { return 1; } return odd(n - 1); }
    double odd(double n) { if (n == 0) { return 0; } return even(n - 1); }
    void main() { print(even(10)); }
    """
    run = run_compiled(compile_source(src, opt=OPT_DIRECT), n_procs=1)
    assert run.prints == [(0, 1.0)]


def test_recursion_with_shared_state_and_changes():
    """Recursive function touching shared data while main may change the
    protocol: the analysis must widen, not mis-devirtualize."""
    src = """
    double walk(shared double *p, double i) {
        if (i < 0) { return 0; }
        return p[i] + walk(p, i - 1);
    }
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 4);
        for (int i = 0; i < 4; i++) { p[i] = i + 1; }
        double a = walk(p, 3);
        ace_change_protocol(s, "Null");
        double b = walk(p, 3);
        print(a + b);
    }
    """
    run = run_compiled(compile_source(src, opt=OPT_DIRECT), n_procs=1)
    assert run.prints == [(0, 20.0)]


def test_deref_of_protocol_violation_surfaces():
    """Runtime protocol misuse inside compiled code raises cleanly."""
    src = """
    void main() {
        int s = ace_new_space("Null");
        shared double *p;
        if (my_proc() == 0) {
            p = ace_gmalloc(s, 1);
            bb_put("p", 0, p);
        }
        ace_barrier(s);
        p = bb_get("p", 0);
        if (my_proc() == 1) { p[0] = 1; }
        ace_barrier(s);
    }
    """
    with pytest.raises(ProtocolMisuse, match="home-local"):
        run_compiled(compile_source(src, opt=OPT_BASE), n_procs=2)


def test_shared_index_out_of_bounds():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 2);
        p[5] = 1;
    }
    """
    with pytest.raises(AceRuntimeErr, match="out of bounds"):
        run_compiled(compile_source(src, opt=OPT_BASE), n_procs=1)


def test_pass_stats_reported():
    src = K.bsc_source(K.BSCKernelWL())
    prog = compile_source(src, opt=OPT_DIRECT)
    assert prog.pass_stats["hoisted"] > 0
    assert prog.pass_stats["devirtualized"] > 0
    assert prog.pass_stats["deleted"] > 0


def test_nested_loop_hoisting_climbs_levels():
    """An invariant access inside a triple loop hoists all the way out."""
    src = """
    void main() {
        int s = ace_new_space("Null");
        shared double *p;
        p = ace_gmalloc(s, 1);
        double acc = 0;
        for (int a = 0; a < 2; a++) {
            for (int b = 0; b < 2; b++) {
                for (int c = 0; c < 2; c++) { acc += p[0]; }
            }
        }
        print(acc);
    }
    """
    from repro.compiler import OPT_LI

    prog = compile_source(src, opt=OPT_LI)
    fn = prog.ir.funcs["main"]
    innermost = fn.loops[0]
    outermost = fn.loops[-1]
    all_loop_blocks = set().union(*(l.body for l in fn.loops))
    loop_ops = [i.op for b in all_loop_blocks for i in fn.blocks[b].instrs]
    assert "map" not in loop_ops
    assert "start_read" not in loop_ops
    # the access itself stays innermost
    inner_ops = [i.op for b in innermost.body for i in fn.blocks[b].instrs]
    assert "deref_load" in inner_ops
    # and the program still works
    run = run_compiled(prog, n_procs=1)
    assert run.prints == [(0, 0.0)]
