"""Static annotation sanitizer: seeded-bug fixtures and kernel certification."""

import pytest

from repro.apps import acec_sources as K
from repro.compiler.driver import OPT_BASE, OPT_DIRECT, OPT_LI, OPT_LI_MC, compile_source
from repro.compiler.errors import AnnotationError
from repro.protocols.registry import default_registry
from repro.sanitize import Violation, check_or_raise, check_program, may_elide

ALL_OPTS = [OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT]

KERNELS = {
    "em3d": lambda: K.em3d_source(K.EM3DKernelWL()),
    "bsc": lambda: K.bsc_source(K.BSCKernelWL()),
    "water": lambda: K.water_source(K.WaterKernelWL()),
    "bh": lambda: K.bh_source(K.BHKernelWL()),
    "tsp": lambda: K.tsp_source(K.TSPKernelWL()),
}

_PRELUDE = """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    p = ace_gmalloc(s, 4);
    mapped double *m;
    m = ace_map(p);
"""

#: seeded misannotations -> (rule, source line the diagnostic must carry)
FIXTURES = {
    "missing_end": (
        _PRELUDE + """    ace_start_write(m);
    m[0] = 1;
}
""",
        "open-access-at-exit",
        8,
    ),
    "write_under_read": (
        _PRELUDE + """    ace_start_read(m);
    m[0] = 1;
    ace_end_read(m);
}
""",
        "write-under-read",
        9,
    ),
    "double_start": (
        _PRELUDE + """    ace_start_read(m);
    ace_start_read(m);
    ace_end_read(m);
    ace_end_read(m);
}
""",
        "double-start",
        9,
    ),
    "unmap_leak": (
        """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    shared double *q;
    p = ace_gmalloc(s, 4);
    q = ace_gmalloc(s, 4);
    mapped double *a;
    mapped double *b;
    a = ace_map(p);
    b = ace_map(q);
    ace_start_write(a);
    a[0] = 1;
    ace_end_write(a);
    ace_start_write(b);
    b[0] = 2;
    ace_end_write(b);
    ace_unmap(a);
}
""",
        "map-leak",
        11,
    ),
}


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_seeded_fixture_is_flagged_with_function_and_line(name):
    source, rule, line = FIXTURES[name]
    with pytest.raises(AnnotationError) as exc:
        compile_source(source, sanitize=True)
    msg = str(exc.value)
    assert f"[{rule}]" in msg
    assert f"main:{line}:" in msg
    assert "post-lowering" in msg


@pytest.mark.parametrize("name", sorted(FIXTURES))
def test_seeded_fixture_without_sanitize_compiles(name):
    # The sanitizer is opt-in: a misannotated program still compiles
    # (and misbehaves at run time) when the check is off.
    source, _, _ = FIXTURES[name]
    compile_source(source, sanitize=False)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
@pytest.mark.parametrize("opt", ALL_OPTS, ids=lambda o: o.name)
def test_all_kernels_certify_clean_at_every_level(kernel, opt):
    prog = compile_source(KERNELS[kernel](), opt=opt, sanitize=True)
    assert prog.pass_stats["sanitize"] == [
        "post-lowering",
        f"post-optimization ({opt.name})",
    ]


def test_post_optimization_recheck_catches_a_pass_bug():
    """Deleting a non-elidable END from optimized IR must be flagged."""
    prog = compile_source(KERNELS["em3d"](), opt=OPT_LI_MC, sanitize=True)
    registry = prog.registry
    mutated = False
    for fn in prog.ir.funcs.values():
        for block in fn.blocks.values():
            for i, ins in enumerate(block.instrs):
                if ins.op in ("end_read", "end_write") and not may_elide(
                    ins.protocols, ins.op, registry
                ):
                    del block.instrs[i]
                    mutated = True
                    break
            if mutated:
                break
        if mutated:
            break
    assert mutated, "expected at least one non-elidable END in optimized IR"
    violations = check_program(prog.ir, registry, strict=False)
    assert violations, "sanitizer missed the deleted END"
    with pytest.raises(AnnotationError, match="post-optimization"):
        check_or_raise(prog.ir, registry, phase="post-optimization (LI+MC)", strict=False)


def test_check_or_raise_returns_zero_on_clean_ir():
    prog = compile_source(KERNELS["tsp"](), opt=OPT_BASE)
    assert check_or_raise(prog.ir, prog.registry) == 0


def test_violation_rendering_is_stable():
    v = Violation(rule="double-start", func="main", line=9, message="boom")
    assert str(v) == "main:9: [double-start] boom"


def test_lock_imbalance_is_flagged():
    source = """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    p = ace_gmalloc(s, 4);
    ace_lock(p);
}
"""
    violations = check_program(compile_source(source).ir, default_registry)
    assert any(v.rule == "lock-leak" for v in violations)
