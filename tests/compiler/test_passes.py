"""Pass-level tests: Figure 5 annotation shapes, Figure 6 merging,
§4.2 analysis precision, loop hoisting, direct dispatch."""

from repro.compiler import OPT_BASE, OPT_DIRECT, OPT_LI, OPT_LI_MC, compile_source


def ops_of(prog, fn="main"):
    return [i.op for i in prog.ir.funcs[fn].all_instrs()]


def annos_of(prog, fn="main"):
    return [
        i
        for i in prog.ir.funcs[fn].all_instrs()
        if i.op in ("map", "unmap", "start_read", "end_read", "start_write", "end_write")
    ]


SIMPLE = """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    p = ace_gmalloc(s, 4);
    double v = p[1];
    p[2] = v + 1;
}
"""


def test_figure5_annotation_shape():
    """Loads become MAP; START_READ; deref; END_READ (Figure 5)."""
    prog = compile_source(SIMPLE, opt=OPT_BASE)
    ops = ops_of(prog)
    i = ops.index("start_read")
    assert ops[i - 1] == "map"
    assert ops[i + 1] == "deref_load"
    assert ops[i + 2] == "end_read"
    j = ops.index("start_write")
    assert ops[j - 1] == "map"
    assert ops[j + 1] == "deref_store"
    assert ops[j + 2] == "end_write"


def test_analysis_unique_protocol_sc():
    prog = compile_source(SIMPLE, opt=OPT_BASE)
    for ins in annos_of(prog):
        assert ins.protocols == frozenset({"SC"})


def test_analysis_tracks_change_protocol_strong_update():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 4);
        double before = p[0];
        ace_change_protocol(s, "StaticUpdate");
        double after = p[0];
        print(before + after);
    }
    """
    prog = compile_source(src, opt=OPT_BASE)
    annos = annos_of(prog)
    # first access: {SC}; after the change: {StaticUpdate}
    reads = [i for i in annos if i.op == "start_read"]
    assert reads[0].protocols == frozenset({"SC"})
    assert reads[1].protocols == frozenset({"StaticUpdate"})


def test_analysis_merges_at_join_points():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 4);
        if (my_proc() == 0) { ace_change_protocol(s, "Null"); }
        double v = p[0];
        print(v);
    }
    """
    prog = compile_source(src, opt=OPT_BASE)
    reads = [i for i in annos_of(prog) if i.op == "start_read"]
    assert reads[-1].protocols == frozenset({"SC", "Null"})


def test_analysis_flows_through_calls_and_bb():
    src = """
    double consume(shared double *q) { return q[0]; }
    void main() {
        int s = ace_new_space("SC");
        ace_change_protocol(s, "DynamicUpdate");
        shared double *p;
        p = ace_gmalloc(s, 4);
        bb_put("x", 0, p);
        shared double *r;
        r = bb_get("x", 0);
        print(consume(r));
    }
    """
    prog = compile_source(src, opt=OPT_BASE)
    reads = [i for i in annos_of(prog, "consume") if i.op == "start_read"]
    assert reads[0].protocols == frozenset({"DynamicUpdate"})


def test_loop_invariance_hoists_optimizable_only():
    template = """
    void main() {{
        int s = ace_new_space("{proto}");
        shared double *p;
        p = ace_gmalloc(s, 8);
        double acc = 0;
        for (int i = 0; i < 8; i++) {{ acc += p[i]; }}
        print(acc);
    }}
    """
    # StaticUpdate is optimizable: MAP/START/END leave the loop
    prog = compile_source(template.format(proto="StaticUpdate"), opt=OPT_LI)
    assert prog.pass_stats["hoisted"] > 0
    loop = prog.ir.funcs["main"].loops[0]
    in_loop_ops = [
        i.op for b in loop.body for i in prog.ir.funcs["main"].blocks[b].instrs
    ]
    assert "map" not in in_loop_ops
    assert "start_read" not in in_loop_ops and "end_read" not in in_loop_ops
    assert "deref_load" in in_loop_ops  # the access itself stays

    # SC is not optimizable: nothing may move
    prog_sc = compile_source(template.format(proto="SC"), opt=OPT_LI)
    assert prog_sc.pass_stats["hoisted"] == 0


def test_direct_dispatch_deletes_null_hooks_of_optimizable_only():
    template = """
    void main() {{
        int s = ace_new_space("{proto}");
        shared double *p;
        p = ace_gmalloc(s, 4);
        double v = p[0];
        print(v);
    }}
    """
    # Counter declares end_read null but is NOT optimizable — its hooks
    # are the protocol's semantics, so the call must survive: it gets
    # devirtualized, never deleted.
    prog = compile_source(template.format(proto="Counter"), opt=OPT_DIRECT)
    ends = [i for i in annos_of(prog) if i.op == "end_read"]
    assert ends and all(i.direct for i in ends)
    assert prog.pass_stats["deleted"] == 0

    # StaticUpdate is optimizable with the same hook null: deleted.
    prog_su = compile_source(template.format(proto="StaticUpdate"), opt=OPT_DIRECT)
    assert all(i.op != "end_read" for i in annos_of(prog_su))
    assert prog_su.pass_stats["deleted"] > 0


def test_no_motion_past_synchronization():
    src = """
    void main() {
        int s = ace_new_space("StaticUpdate");
        shared double *p;
        p = ace_gmalloc(s, 8);
        double acc = 0;
        for (int i = 0; i < 8; i++) {
            acc += p[i];
            ace_barrier(s);
        }
        print(acc);
    }
    """
    prog = compile_source(src, opt=OPT_LI)
    assert prog.pass_stats["hoisted"] == 0


def test_figure6_merge_redundant_writes():
    """Two stores to the same region in a block share one MAP and one
    START/END pair (Figure 6's exact scenario)."""
    src = """
    void main() {
        int s = ace_new_space("StaticUpdate");
        shared double *x;
        x = ace_gmalloc(s, 4);
        x[0] = 1;
        x[1] = 2;
    }
    """
    base = compile_source(src, opt=OPT_BASE)
    merged = compile_source(src, opt=OPT_LI_MC)
    count = lambda prog, op: sum(1 for i in annos_of(prog) if i.op == op)
    assert count(base, "map") == 2
    assert count(base, "start_write") == 2
    assert count(merged, "start_write") == 1
    assert count(merged, "end_write") == 1
    assert merged.pass_stats["merged"] >= 2


def test_merge_respects_redefinition():
    src = """
    void main() {
        int s = ace_new_space("StaticUpdate");
        shared double *x;
        x = ace_gmalloc(s, 4);
        x[0] = 1;
        x = ace_gmalloc(s, 4);
        x[0] = 2;
    }
    """
    merged = compile_source(src, opt=OPT_LI_MC)
    # x redefined between stores: both START_WRITEs must survive
    assert sum(1 for i in annos_of(merged) if i.op == "start_write") == 2


def test_merge_does_not_mix_reads_and_writes():
    src = """
    void main() {
        int s = ace_new_space("StaticUpdate");
        shared double *x;
        x = ace_gmalloc(s, 4);
        double v = x[0];
        x[1] = v;
    }
    """
    merged = compile_source(src, opt=OPT_LI_MC)
    ops = [i.op for i in annos_of(merged)]
    assert "start_read" in ops and "start_write" in ops


def test_direct_dispatch_marks_and_deletes():
    src = """
    void main() {
        int s = ace_new_space("StaticUpdate");
        shared double *p;
        p = ace_gmalloc(s, 4);
        double v = p[0];
        print(v);
    }
    """
    prog = compile_source(src, opt=OPT_DIRECT)
    annos = annos_of(prog)
    # StaticUpdate: start_read/end_read are null -> deleted entirely
    assert all(i.op not in ("start_read", "end_read") for i in annos)
    # the MAP survives but is devirtualized
    maps = [i for i in annos if i.op == "map"]
    assert maps and all(i.direct for i in maps)
    assert prog.pass_stats["deleted"] >= 2


def test_direct_dispatch_needs_unique_protocol():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 4);
        if (my_proc() == 0) { ace_change_protocol(s, "StaticUpdate"); }
        double v = p[0];
        print(v);
    }
    """
    prog = compile_source(src, opt=OPT_DIRECT)
    reads = [i for i in annos_of(prog) if i.op == "start_read"]
    assert reads and all(not i.direct for i in reads)


def test_dump_is_readable():
    prog = compile_source(SIMPLE, opt=OPT_DIRECT)
    text = prog.dump()
    assert "func main" in text
    assert "map" in text
