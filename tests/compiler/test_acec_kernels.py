"""The five Table 4 kernels: correctness at every optimization level,
hand-vs-compiled equivalence, and the Table 4 performance ladder."""

import numpy as np
import pytest

from repro.apps import acec_sources as K
from repro.compiler import OPT_BASE, OPT_DIRECT, OPT_LI, OPT_LI_MC, compile_source, run_compiled

ALL_LEVELS = [OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT]
IDS = [o.name for o in ALL_LEVELS]


def run_kernel(src, host_data, opt=OPT_DIRECT, n_procs=4):
    return run_compiled(compile_source(src, opt=opt), n_procs=n_procs, host_data=host_data)


# ----------------------------------------------------------------- EM3D
EM3D_WL = K.EM3DKernelWL(n=12, degree=2, iters=6)


def em3d_values(run, wl):
    e = np.array([run.bb[("e_out", i)] for i in range(wl.n)])
    h = np.array([run.bb[("h_out", i)] for i in range(wl.n)])
    return e, h


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=IDS)
def test_em3d_kernel_matches_reference(opt):
    run = run_kernel(K.em3d_source(EM3D_WL), K.em3d_host_data(EM3D_WL, 4), opt=opt)
    e, h = em3d_values(run, EM3D_WL)
    e_ref, h_ref = K.em3d_reference(EM3D_WL, 4)
    np.testing.assert_allclose(e, e_ref, rtol=1e-12)
    np.testing.assert_allclose(h, h_ref, rtol=1e-12)


def test_em3d_hand_matches_reference():
    run = run_kernel(K.em3d_hand_source(EM3D_WL), K.em3d_host_data(EM3D_WL, 4))
    e, h = em3d_values(run, EM3D_WL)
    e_ref, h_ref = K.em3d_reference(EM3D_WL, 4)
    np.testing.assert_allclose(e, e_ref, rtol=1e-12)
    np.testing.assert_allclose(h, h_ref, rtol=1e-12)


def test_em3d_ladder_and_hand_bound():
    host = K.em3d_host_data(EM3D_WL, 4)
    times = [run_kernel(K.em3d_source(EM3D_WL), host, opt=o).time for o in ALL_LEVELS]
    hand = run_kernel(K.em3d_hand_source(EM3D_WL), host).time
    assert times[0] >= times[1] >= times[2] >= times[3]
    assert times[3] < times[0]          # optimizations help overall
    assert hand < times[3]              # hand-optimized is fastest


# ----------------------------------------------------------------- BSC
BSC_WL = K.BSCKernelWL(nb=4, block=3, band=2)


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=IDS)
def test_bsc_kernel_matches_cholesky(opt):
    run = run_kernel(K.bsc_source(BSC_WL), K.bsc_host_data(BSC_WL), opt=opt, n_procs=2)
    L = K.bsc_collect(run, BSC_WL)
    np.testing.assert_allclose(L, K.bsc_reference(BSC_WL), rtol=1e-9, atol=1e-9)


def test_bsc_hand_matches_cholesky():
    run = run_kernel(K.bsc_hand_source(BSC_WL), K.bsc_host_data(BSC_WL), n_procs=2)
    L = K.bsc_collect(run, BSC_WL)
    np.testing.assert_allclose(L, K.bsc_reference(BSC_WL), rtol=1e-9, atol=1e-9)


def test_bsc_loop_invariance_is_the_big_win():
    """§5.3: 'In Block Sparse Cholesky ... a large improvement ...
    attributed to the loop invariance optimization.'"""
    host = K.bsc_host_data(BSC_WL)
    t_base = run_kernel(K.bsc_source(BSC_WL), host, opt=OPT_BASE, n_procs=2).time
    t_li = run_kernel(K.bsc_source(BSC_WL), host, opt=OPT_LI, n_procs=2).time
    assert t_base / t_li > 1.5  # LI alone is a major improvement


# ----------------------------------------------------------------- Water
WATER_WL = K.WaterKernelWL(n=8, steps=2)


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=IDS)
def test_water_kernel_matches_reference(opt):
    run = run_kernel(K.water_source(WATER_WL), K.water_host_data(WATER_WL), opt=opt)
    state = K.water_collect(run, WATER_WL)
    np.testing.assert_allclose(state, K.water_reference(WATER_WL), rtol=1e-9, atol=1e-12)


def test_water_hand_matches_reference():
    run = run_kernel(K.water_hand_source(WATER_WL), K.water_host_data(WATER_WL))
    state = K.water_collect(run, WATER_WL)
    np.testing.assert_allclose(state, K.water_reference(WATER_WL), rtol=1e-9, atol=1e-12)


def test_water_merging_is_the_big_win():
    """Table 4 Water: 1.76 -> 0.73 from merging calls."""
    host = K.water_host_data(WATER_WL)
    t_li = run_kernel(K.water_source(WATER_WL), host, opt=OPT_LI).time
    t_mc = run_kernel(K.water_source(WATER_WL), host, opt=OPT_LI_MC).time
    assert t_li / t_mc > 1.2


# ----------------------------------------------------------------- Barnes-Hut
BH_WL = K.BHKernelWL(n=12, steps=2)


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=IDS)
def test_bh_kernel_matches_reference(opt):
    run = run_kernel(K.bh_source(BH_WL), K.bh_host_data(BH_WL), opt=opt)
    state = K.bh_collect(run, BH_WL)
    np.testing.assert_allclose(state, K.bh_reference(BH_WL), rtol=1e-9, atol=1e-12)


def test_bh_hand_matches_reference():
    run = run_kernel(K.bh_hand_source(BH_WL), K.bh_host_data(BH_WL))
    state = K.bh_collect(run, BH_WL)
    np.testing.assert_allclose(state, K.bh_reference(BH_WL), rtol=1e-9, atol=1e-12)


# ----------------------------------------------------------------- TSP
TSP_WL = K.TSPKernelWL(n_cities=6)


@pytest.mark.parametrize("opt", ALL_LEVELS, ids=IDS)
def test_tsp_kernel_finds_optimum(opt):
    run = run_kernel(K.tsp_source(TSP_WL), K.tsp_host_data(TSP_WL), opt=opt)
    assert run.bb[("result", 0)] == pytest.approx(K.tsp_reference(TSP_WL))


def test_tsp_hand_finds_optimum():
    run = run_kernel(K.tsp_source(TSP_WL, hand=True), K.tsp_host_data(TSP_WL))
    assert run.bb[("result", 0)] == pytest.approx(K.tsp_reference(TSP_WL))


# ----------------------------------------------------------------- ladder
@pytest.mark.parametrize(
    "source_fn,hand_fn,host",
    [
        (lambda: K.bsc_source(BSC_WL), lambda: K.bsc_hand_source(BSC_WL), lambda: K.bsc_host_data(BSC_WL)),
        (lambda: K.water_source(WATER_WL), lambda: K.water_hand_source(WATER_WL), lambda: K.water_host_data(WATER_WL)),
        (lambda: K.bh_source(BH_WL), lambda: K.bh_hand_source(BH_WL), lambda: K.bh_host_data(BH_WL)),
        (lambda: K.tsp_source(TSP_WL), lambda: K.tsp_source(TSP_WL, hand=True), lambda: K.tsp_host_data(TSP_WL)),
    ],
    ids=["bsc", "water", "bh", "tsp"],
)
def test_table4_ladder_shape(source_fn, hand_fn, host):
    """Optimization levels never regress; hand-optimized is fastest."""
    host_data = host()
    times = [
        run_kernel(source_fn(), host_data, opt=o, n_procs=2).time for o in ALL_LEVELS
    ]
    hand = run_kernel(hand_fn(), host_data, n_procs=2).time
    assert times[0] >= times[1] >= times[2] >= times[3]
    assert hand <= times[3]
