"""Lexer/parser/lowering tests."""

import pytest

from repro.compiler.errors import AceCompileError, AceSyntaxError
from repro.compiler.lexer import tokenize
from repro.compiler.lowering import lower_program
from repro.compiler.parser_ import parse


def lower(src):
    return lower_program(parse(src))


def test_tokenize_basics():
    toks = tokenize('int x = 42; // comment\ndouble y = 3.5e-2; x += "hi";')
    kinds = [(t.kind, t.value) for t in toks if t.kind != "eof"]
    assert ("kw", "int") in kinds
    assert ("num", "42") in kinds
    assert ("num", "3.5e-2") in kinds
    assert ("op", "+=") in kinds
    assert ("str", "hi") in kinds


def test_tokenize_block_comment_and_position():
    toks = tokenize("/* a\nb */ int x;")
    assert toks[0].value == "int"
    assert toks[0].line == 2


def test_tokenize_rejects_garbage():
    with pytest.raises(AceSyntaxError, match="unexpected character"):
        tokenize("int @x;")


def test_tokenize_unterminated_string():
    with pytest.raises(AceSyntaxError, match="unterminated string"):
        tokenize('"abc')


def test_parse_minimal_main():
    ast = parse("void main() { return; }")
    assert "main" in ast.funcs


def test_parse_requires_main():
    with pytest.raises(AceSyntaxError, match="no main"):
        parse("void helper() { return; }")


def test_parse_rejects_raw_pointers():
    with pytest.raises(AceSyntaxError, match="raw pointers"):
        parse("void main() { double *p; }")


def test_parse_shared_must_be_pointer():
    with pytest.raises(AceSyntaxError, match="must be pointers"):
        parse("void main() { shared double x; }")


def test_parse_full_constructs():
    src = """
    double helper(double a, int b) {
        double acc = 0;
        for (int i = 0; i < b; i++) {
            if (i % 2 == 0) { acc += a; } else { acc -= 1; }
        }
        while (acc > 100) { acc = acc / 2; break; }
        return acc;
    }
    void main() {
        double r = helper(2.5, 10);
        print(r);
    }
    """
    ir = lower(src)
    assert set(ir.funcs) == {"helper", "main"}
    # helper has two loops recorded (for + while)
    assert len(ir.funcs["helper"].loops) == 2


def test_lowering_rejects_undeclared_variable():
    with pytest.raises(AceCompileError, match="undeclared"):
        lower("void main() { x = 1; }")


def test_lowering_rejects_redeclaration():
    with pytest.raises(AceCompileError, match="redeclared"):
        lower("void main() { int x; int x; }")


def test_lowering_rejects_unknown_function():
    with pytest.raises(AceCompileError, match="unknown function"):
        lower("void main() { frobnicate(1); }")


def test_lowering_rejects_bad_arity():
    with pytest.raises(AceCompileError, match="expects 2 args"):
        lower("void main() { int s = ace_gmalloc(1); }")


def test_lowering_rejects_indexing_scalar():
    with pytest.raises(AceCompileError, match="cannot index scalar"):
        lower("void main() { int x; int y = x[0]; }")


def test_lowering_scopes_shadowing():
    src = """
    void main() {
        int x = 1;
        if (x) { int x = 2; print(x); }
        print(x);
    }
    """
    ir = lower(src)
    # two distinct unique names for x
    names = {n for n in ir.funcs["main"].var_types if n.startswith("x$")}
    assert len(names) == 2


def test_shared_access_lowers_to_shared_ops():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 8);
        p[3] = 1.5;
        double v = p[3];
        print(v);
    }
    """
    ir = lower(src)
    ops = [i.op for i in ir.funcs["main"].all_instrs()]
    assert "shared_store" in ops
    assert "shared_load" in ops


def test_mapped_access_lowers_to_deref_and_annotations():
    src = """
    void main() {
        int s = ace_new_space("SC");
        shared double *p;
        p = ace_gmalloc(s, 8);
        mapped double *h;
        h = ace_map(p);
        ace_start_write(h);
        h[0] = 2.0;
        ace_end_write(h);
        ace_unmap(h);
    }
    """
    ir = lower(src)
    ops = [i.op for i in ir.funcs["main"].all_instrs()]
    assert "map" in ops and "start_write" in ops and "end_write" in ops and "unmap" in ops
    assert "deref_store" in ops
    assert "shared_store" not in ops


def test_loop_info_nesting():
    src = """
    void main() {
        for (int i = 0; i < 3; i++) {
            for (int j = 0; j < 3; j++) { print(i + j); }
        }
    }
    """
    ir = lower(src)
    loops = ir.funcs["main"].loops
    assert len(loops) == 2
    inner, outer = loops  # innermost first
    assert inner.header in outer.body
    assert inner.preheader in outer.body
