"""Behavioral tests for Migratory, HomeWrite, Counter, PipelinedWrite."""

import pytest

from repro.facade import run_spmd
from repro.protocols.base import ProtocolMisuse


# ---------------------------------------------------------------- Migratory
def test_migratory_data_follows_accessors():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Migratory")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        # pass the region around the ring, each node incrementing in turn
        for turn in range(ctx.n_procs):
            if turn == ctx.nid:
                yield from ctx.start_write(h)
                h.data[0] += 1
                yield from ctx.end_write(h)
            yield from ctx.barrier()
        yield from ctx.start_read(h)
        out = h.data[0]
        yield from ctx.end_read(h)
        yield from ctx.barrier()
        return out

    res = run_spmd(prog, backend="ace", n_procs=4)
    # After the ring, each read sees at least its own era's total; the
    # final reader (wherever the copy settles) sees 4.
    assert max(res.results) == 4.0
    assert res.stats.get("proto.Migratory.migrate") >= 4


def test_migratory_repeated_local_access_is_hit():
    def prog(ctx):
        sid = yield from ctx.new_space("Migratory")
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        for _ in range(10):
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
        return h.data[0]

    res = run_spmd(prog, backend="ace", n_procs=1)
    assert res.results[0] == 10.0
    assert res.stats.get("proto.Migratory.hit") == 10
    assert res.stats.get("proto.Migratory.migrate") == 0


def test_migratory_contention_serializes():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Migratory")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        for _ in range(5):
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        if ctx.nid == 0:
            yield from ctx.start_read(h)
            out = h.data[0]
            yield from ctx.end_read(h)
            return out

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results[0] == 20.0


# ---------------------------------------------------------------- HomeWrite
def test_home_write_version_revalidation():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("HomeWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 8)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])  # fetches version 0
        yield from ctx.barrier()
        if ctx.nid == 0:
            yield from ctx.start_write(h)
            h.data[0] = 1.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        yield from ctx.start_read(h)
        first = h.data[0]
        yield from ctx.end_read(h)
        # read again without intervening write: revalidation, no data
        yield from ctx.start_read(h)
        second = h.data[0]
        yield from ctx.end_read(h)
        yield from ctx.barrier()
        return (first, second)

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results[1] == (1.0, 1.0)
    assert res.stats.get("proto.HomeWrite.refetch") >= 1
    assert res.stats.get("proto.HomeWrite.revalidate_hit") >= 1


def test_home_write_rejects_remote_writer():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("HomeWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            yield from ctx.start_write(h)

    with pytest.raises(ProtocolMisuse, match="creators own their data"):
        run_spmd(prog, backend="ace", n_procs=2)


def test_home_write_no_invalidation_traffic():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("HomeWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        for it in range(3):
            if ctx.nid == 0:
                yield from ctx.start_write(h)
                h.data[0] = it
                yield from ctx.end_write(h)
            yield from ctx.barrier()
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)
            yield from ctx.barrier()

    res = run_spmd(prog, backend="ace", n_procs=4)
    # the whole point: zero invalidations / ownership messages
    assert res.stats.with_prefix("msg.ace.sc") == {}


# ---------------------------------------------------------------- Counter
def test_counter_fetch_add_is_atomic():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Counter")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        taken = []
        for _ in range(10):
            yield from ctx.start_write(h)
            taken.append(int(h.data[0]))
            h.data[0] += 1
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        return taken

    res = run_spmd(prog, backend="ace", n_procs=4)
    all_taken = sorted(x for taken in res.results for x in taken)
    assert all_taken == list(range(40))  # every ticket handed out exactly once


def test_counter_read_sees_committed_value():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Counter")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            yield from ctx.start_write(h)
            h.data[0] = 42.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        yield from ctx.start_read(h)
        out = h.data[0]
        yield from ctx.end_read(h)
        return out

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [42.0] * 3


def test_counter_cheaper_than_sc_lock_pattern():
    """The §5.2 TSP claim: the counter protocol beats lock+SC-write."""
    boxes = {}

    def counter_prog(ctx):
        sid = yield from ctx.new_space("Counter")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        for _ in range(20):
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
        yield from ctx.barrier()

    def sc_prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid2"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        rid = boxes["rid2"]
        h = yield from ctx.map(rid)
        for _ in range(20):
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
        yield from ctx.barrier()

    t_counter = run_spmd(counter_prog, backend="ace", n_procs=8).time
    t_sc = run_spmd(sc_prog, backend="ace", n_procs=8).time
    assert t_counter < t_sc


# ------------------------------------------------------------ PipelinedWrite
def test_pipelined_write_accumulates_deltas():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("PipelinedWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 3)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        # every node adds its contribution concurrently
        yield from ctx.start_write(h)
        h.data[ctx.nid % 3] += ctx.nid + 1
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)  # protocol barrier drains deltas
        yield from ctx.start_read(h)
        out = list(h.data)
        yield from ctx.end_read(h)
        return out

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [[1.0, 2.0, 3.0]] * 3


def test_pipelined_write_writer_does_not_block():
    """end_write returns before the delta lands (pipelining)."""
    boxes = {}
    times = {}

    def prog(ctx):
        sid = yield from ctx.new_space("PipelinedWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 64)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            t0 = ctx.machine.sim.now
            for _ in range(10):
                yield from ctx.start_write(h)
                h.data[0] += 1
                yield from ctx.end_write(h)
            times["write_loop"] = ctx.machine.sim.now - t0
        yield from ctx.barrier(sid)

    res = run_spmd(prog, backend="ace", n_procs=2)
    cfg = res.machine.config
    # 10 pipelined writes must cost well under 10 full round trips
    round_trip = 2 * (cfg.am_send_overhead + cfg.message_cost(64) + cfg.am_receive_overhead)
    assert times["write_loop"] < 10 * round_trip


def test_pipelined_write_phase_refetch_after_barrier():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("PipelinedWrite")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        for it in range(3):
            if ctx.nid == 1:
                yield from ctx.start_write(h)
                h.data[0] += 1
                yield from ctx.end_write(h)
            yield from ctx.barrier(sid)
            yield from ctx.start_read(h)
            val = h.data[0]
            yield from ctx.end_read(h)
            assert val == it + 1, f"node {ctx.nid} iter {it} saw {val}"
        return True

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert all(res.results)
