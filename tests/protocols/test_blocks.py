"""Unit tests for the §6 protocol building blocks."""

from repro.machine import Machine, MachineConfig
from repro.protocols.blocks import AckCollector, HomeQueue, SharerDirectory, VersionTable
from repro.sim import Simulator


def test_ack_collector_fans_out_and_resolves():
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=4))
    acks = AckCollector(machine, name="t")
    hits = []

    def handler(node, src, payload, state):
        hits.append((node.nid, payload))
        acks.post_ack(node.nid, src, state)

    resolved = []

    def driver():
        done = acks.fan_out(0, [1, 2, 3], handler, "data", payload_words=5)
        yield done
        resolved.append(sim.now)

    sim.spawn(driver())
    sim.run()
    assert sorted(hits) == [(1, "data"), (2, "data"), (3, "data")]
    assert resolved and resolved[0] > 0
    assert machine.stats.get("msg.blocks.t") == 3
    assert machine.stats.get("msg.blocks.t.ack") == 3


def test_ack_collector_empty_targets_immediate():
    sim = Simulator()
    machine = Machine(sim, MachineConfig(n_procs=2))
    acks = AckCollector(machine)
    done = acks.fan_out(0, [], lambda *a: None)
    assert done.resolved


def test_home_queue_fifo_grants():
    q = HomeQueue()
    order = []
    q.acquire("k", lambda: order.append("a"))
    q.acquire("k", lambda: order.append("b"))
    q.acquire("k", lambda: order.append("c"))
    assert order == ["a"]
    q.release("k")
    q.release("k")
    assert order == ["a", "b", "c"]
    assert q.held("k")
    q.release("k")
    assert not q.held("k")


def test_home_queue_keys_independent():
    q = HomeQueue()
    got = []
    q.acquire(1, lambda: got.append(1))
    q.acquire(2, lambda: got.append(2))
    assert got == [1, 2]


def test_sharer_directory():
    d = SharerDirectory()
    d.register(7, 1)
    d.register(7, 2)
    d.register(7, 3)
    d.drop(7, 2)
    assert d.sharers(7) == [1, 3]
    assert d.sharers(7, exclude=(1,)) == [3]
    assert (7, 1) in d
    assert (7, 2) not in d
    assert d.sharers(99) == []


def test_version_table():
    v = VersionTable()
    assert v.current(5) == 0
    assert v.is_current(5, 0)
    assert v.bump(5) == 1
    assert v.bump(5) == 2
    assert not v.is_current(5, 1)
    assert v.is_current(5, 2)
