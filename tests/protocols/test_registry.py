"""Unit tests for protocol registration (the Figure 1 mechanism)."""

import pytest

from repro.protocols import Protocol, ProtocolRegistry, ProtocolSpec, default_registry
from repro.protocols.base import HOOK_NAMES


def test_default_registry_has_all_shipped_protocols():
    assert default_registry.names() == [
        "BufferedUpdate",
        "Counter",
        "DynamicUpdate",
        "HomeWrite",
        "HwSC",
        "Migratory",
        "Null",
        "Owned",
        "PipelinedWrite",
        "RaceDetect",
        "SC",
        "SelfInvalidate",
        "StaticUpdate",
    ]


def test_sc_is_not_optimizable_updates_are():
    assert not default_registry.spec("SC").optimizable
    assert default_registry.spec("DynamicUpdate").optimizable
    assert default_registry.spec("StaticUpdate").optimizable
    assert default_registry.spec("Null").optimizable


def test_config_table_shape():
    table = default_registry.config_table()
    for name, entry in table.items():
        # The legacy Figure 1 fields, plus the table-derived metadata
        # every table-driven protocol exports.
        assert {"optimizable", "null_hooks", "routines"} <= set(entry)
        assert {"base_state", "sync_model", "writer_model", "home_writer"} <= set(entry)
        assert set(entry["routines"]) == set(HOOK_NAMES)
    # Figure 1's derived-name convention: Protocol_ExecutionPoint
    assert table["StaticUpdate"]["routines"]["start_read"] == "StaticUpdate_StartRead"
    assert table["SC"]["routines"]["end_write"] == "SC_EndWrite"


def test_static_update_registers_null_read_hooks():
    spec = default_registry.spec("StaticUpdate")
    assert spec.is_null("start_read")
    assert spec.is_null("end_read")
    assert not spec.is_null("end_write")
    assert not spec.is_null("barrier")


def test_register_rejects_non_protocol():
    reg = ProtocolRegistry()
    with pytest.raises(TypeError):
        reg.register(int)


def test_register_rejects_abstract_spec():
    reg = ProtocolRegistry()

    class NoSpec(Protocol):
        pass

    with pytest.raises(ValueError, match="concrete ProtocolSpec"):
        reg.register(NoSpec)


def test_register_rejects_duplicates():
    reg = ProtocolRegistry()

    class P1(Protocol):
        spec = ProtocolSpec(name="Dup", optimizable=True)

    class P2(Protocol):
        spec = ProtocolSpec(name="Dup", optimizable=False)

    reg.register(P1)
    with pytest.raises(ValueError, match="registered twice"):
        reg.register(P2)


def test_unknown_protocol_lookup():
    with pytest.raises(KeyError, match="unknown protocol"):
        default_registry.get("Tempest")


def test_spec_rejects_unknown_hooks():
    with pytest.raises(ValueError, match="unknown hook names"):
        ProtocolSpec(name="Bad", optimizable=True, null_hooks=frozenset({"teleport"}))


def test_extensibility_user_protocol_is_usable():
    """The §2.4 claim: adding a protocol is just registering a class."""
    from repro.facade import run_spmd

    reg = ProtocolRegistry()
    reg.register(type(default_registry.get("SC").__name__, (default_registry.get("SC"),), {}))

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        yield from ctx.write_region(h, [3.0])
        return h.data[0]

    res = run_spmd(prog, backend="ace", n_procs=1, registry=reg)
    assert res.results[0] == 3.0
