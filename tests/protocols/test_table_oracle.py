"""Differential oracle: table-driven protocols vs the frozen legacy classes.

The table port (ROADMAP item 4) must be *invisible* in simulated time:
a protocol whose dispatch is interpreted from its
:class:`~repro.spec.table.ProtocolTable` has to produce bit-identical
cycles, results, and protocol counters to the hand-written generator
class it replaced.  :mod:`repro.protocols.legacy` preserves the
pre-port classes verbatim in :data:`~repro.protocols.legacy.legacy_registry`;
this suite runs the same programs under both registries and diffs
everything observable:

* ``res.time`` — total simulated cycles (the hard zero-cost gate);
* ``res.results`` — every node's return value (data behavior);
* the full stats counter table — message categories, protocol event
  counters, dispatch counts (any re-ordered or duplicated message
  shows up here even if the clock happens to agree).

The programs exercise each protocol's characteristic paths: remote
fetch, hits, the write path (home-writer protocols write at home),
barriers (update protocols push there), and an ``Ace_ChangeProtocol``
round trip through the flush machinery.
"""

from __future__ import annotations

import pytest

from repro.facade import run_spmd
from repro.protocols.legacy import legacy_registry
from repro.protocols.registry import default_registry

N_PROCS = 3
SIZE = 4

#: protocols present in both registries — exactly the ported set.
PORTED = sorted(set(default_registry.names()) & set(legacy_registry.names()))


def test_every_legacy_protocol_is_still_shipped():
    """The oracle covers all 11 pre-port protocols; none may vanish."""
    assert len(PORTED) == 11, PORTED
    assert set(legacy_registry.names()) <= set(default_registry.names())


def _exercise(protocol: str, registry):
    """One protocol-exercising run; returns (time, results, counters)."""
    spec = registry.spec(protocol)
    writer = 0 if spec.home_writer else 1
    partner = "SC" if protocol != "SC" else "StaticUpdate"
    boxes: dict = {}

    def prog(ctx):
        sid = yield from ctx.new_space(protocol)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, SIZE)
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        # Everyone reads the initial contents.
        first = yield from ctx.read_region(h)
        yield from ctx.barrier(sid)
        # The writer produces; a second write exercises the hit path.
        if ctx.nid == writer:
            for round_no in (1, 2):
                yield from ctx.start_write(h)
                h.data[:] = [round_no * 10 + i for i in range(SIZE)]
                yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        # Everyone re-reads after the barrier (update pushes, refetches).
        mid = yield from ctx.read_region(h)
        yield from ctx.barrier(sid)
        # Flush round trip through the partner protocol and back.
        yield from ctx.change_protocol(sid, partner)
        h2 = yield from ctx.map(rid)
        under_partner = yield from ctx.read_region(h2)
        yield from ctx.unmap(h2)
        yield from ctx.barrier(sid)
        yield from ctx.change_protocol(sid, protocol)
        h3 = yield from ctx.map(rid)
        back = yield from ctx.read_region(h3)
        yield from ctx.barrier(sid)
        return list(first), list(mid), list(under_partner), list(back)

    res = run_spmd(prog, backend="ace", n_procs=N_PROCS, registry=registry)
    return res.time, res.results, dict(res.stats.counter_ref())


@pytest.mark.parametrize("protocol", PORTED)
def test_table_vs_legacy_bit_identical(protocol):
    t_new, r_new, c_new = _exercise(protocol, default_registry)
    t_old, r_old, c_old = _exercise(protocol, legacy_registry)
    assert t_new == t_old, f"{protocol}: {t_new} cycles (table) vs {t_old} (legacy)"
    assert r_new == r_old
    assert c_new == c_old, {
        k: (c_new.get(k), c_old.get(k))
        for k in set(c_new) | set(c_old)
        if c_new.get(k) != c_old.get(k)
    }
