"""Protocol conformance matrix: flush-to-base round trips for EVERY
registered protocol.

§3.1 defines ``Ace_ChangeProtocol`` in terms of a base state — the old
protocol flushes so "all cached regions [are] flushed back to their
home processors" — and any protocol must be able both to *reach* that
state (flush) and to *start from* it (init after adoption).  The
matrix drives each registered protocol through a full round trip

    P  →  partner  →  P

with a remote write under ``P`` before the first switch, and checks

* region contents survive both switches (every node reads the written
  values under the partner *and* again after returning to ``P``), and
* the shared SC coherence core is left in the directory base state
  whenever a switch flushes it: no owner, no sharers, no home access
  in progress, no busy grant window, empty request queue, and no
  node-side copy left valid (home aside).

The directory check uses the layered core's introspection surface
(:meth:`~repro.dsm.directory.DirectoryService.entry_at`,
:meth:`~repro.dsm.regioncache.RegionCache.copy_of`) — non-creating
lookups, so the probe itself cannot disturb the state it inspects.
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest

import repro.protocols
from repro.facade import run_spmd
from repro.protocols.registry import default_registry

# Import every module in the protocols package before enumerating the
# registry: registration is an import side effect, so a protocol module
# the package __init__ forgot to list would otherwise never register —
# and silently never be tested.  After this sweep, the parametrization
# below is exhaustive by construction.
for _mod in pkgutil.iter_modules(repro.protocols.__path__):
    importlib.import_module(f"repro.protocols.{_mod.name}")

N_PROCS = 2
VALUES = [4.0, 2.0]


def test_registry_covers_every_shipped_protocol():
    """The matrix below runs once per registered protocol; guard that
    the registry itself is not quietly shrinking."""
    names = default_registry.names()
    assert len(names) >= 13, names
    # The paper's core trio must always be present.
    assert {"SC", "StaticUpdate", "DynamicUpdate"} <= set(names)


def _writer(protocol: str) -> int:
    # Derived from the registration record (ProtocolSpec.home_writer),
    # not a hand-maintained list: a new protocol declares its own
    # write-path constraint and is matrixed correctly from day one.
    return 0 if default_registry.spec(protocol).home_writer else 1


def _partner(protocol: str) -> str:
    # The round trip pivots through the default SC protocol; SC itself
    # pivots through StaticUpdate (a same-name change is a no-op).
    return "SC" if protocol != "SC" else "StaticUpdate"


def _base_state_violations(engine, rid: int, n_procs: int, label: str) -> list:
    """Non-creating probe of one coherence engine's state for ``rid``."""
    bad = []
    directory = engine.directory
    ent = directory.entry_at(directory.shard_of(rid), rid)
    if ent is not None:
        if ent.owner is not None:
            bad.append((label, "owner", ent.owner))
        if ent.sharers:
            bad.append((label, "sharers", sorted(ent.sharers)))
        if ent.home_readers or ent.home_writing:
            bad.append((label, "home access open", (ent.home_readers, ent.home_writing)))
        if ent.busy or ent.pending is not None:
            bad.append((label, "grant/recall in flight", (ent.busy, ent.pending)))
        if ent.queue:
            bad.append((label, "queued requests", len(ent.queue)))
    home = engine.regions.get(rid).home
    for nid in range(n_procs):
        copy = engine.cache.copy_of(nid, rid)
        if copy is not None and nid != home and copy.state != "invalid":
            bad.append((label, f"copy live at node {nid}", copy.state))
    return bad


@pytest.mark.parametrize("protocol", default_registry.names())
def test_change_protocol_round_trip(protocol):
    partner = _partner(protocol)
    writer = _writer(protocol)
    boxes: dict = {}
    violations: list = []

    def prog(ctx):
        sid = yield from ctx.new_space(protocol)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, len(VALUES))
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        if ctx.nid == writer:
            yield from ctx.start_write(h)
            h.data[:] = VALUES
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)

        yield from ctx.change_protocol(sid, partner)  # P flushes to base
        if ctx.nid == 0 and protocol == "SC":
            rt = ctx.backend.runtime
            violations.extend(
                _base_state_violations(rt.sc_engine, rid, ctx.n_procs, "after SC flush")
            )
        h2 = yield from ctx.map(rid)
        mid = yield from ctx.read_region(h2)
        yield from ctx.unmap(h2)
        yield from ctx.barrier(sid)

        yield from ctx.change_protocol(sid, protocol)  # partner flushes back
        if ctx.nid == 0 and partner == "SC":
            rt = ctx.backend.runtime
            violations.extend(
                _base_state_violations(rt.sc_engine, rid, ctx.n_procs, "after partner flush")
            )
        h3 = yield from ctx.map(rid)
        back = yield from ctx.read_region(h3)
        return list(mid), list(back)

    res = run_spmd(prog, backend="ace", n_procs=N_PROCS)
    assert violations == []
    for nid, (mid, back) in enumerate(res.results):
        assert mid == VALUES, f"node {nid} read {mid} under {partner} after {protocol} flush"
        assert back == VALUES, f"node {nid} read {back} back under {protocol}"
    # After both flushes the home copy is the region's base data.
    region = res.backend.runtime.regions.get(boxes["rid"])
    assert list(region.home_data) == VALUES
