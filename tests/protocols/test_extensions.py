"""Tests for the §6-extension protocols: RaceDetect, HwSC, BufferedUpdate,
and the protocol building blocks."""

import pytest

from repro.facade import run_spmd
from repro.protocols.base import ProtocolMisuse


def _race_protocol(res, sid=0):
    return res.backend.runtime.spaces[sid].protocol


# ------------------------------------------------------------- RaceDetect
def test_race_free_program_reports_nothing():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("RaceDetect")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 2)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        for epoch in range(3):
            writer = epoch % ctx.n_procs
            if ctx.nid == writer:
                yield from ctx.start_write(h)
                h.data[0] = epoch
                yield from ctx.end_write(h)
            yield from ctx.barrier(sid)
            yield from ctx.start_read(h)
            assert h.data[0] == epoch
            yield from ctx.end_read(h)
            yield from ctx.barrier(sid)
        return True

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert all(res.results)
    assert _race_protocol(res).races == []


def test_write_write_race_detected():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("RaceDetect")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        # both nodes write in the same epoch: a race
        yield from ctx.start_write(h)
        h.data[0] = ctx.nid
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)

    res = run_spmd(prog, backend="ace", n_procs=2)
    races = _race_protocol(res).races
    assert len(races) == 1
    epoch, rid, readers, writers = races[0]
    assert writers == (0, 1)


def test_read_write_race_detected_but_not_reader_of_own_write():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("RaceDetect")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 0:
            yield from ctx.start_write(h)
            h.data[0] = 1
            yield from ctx.end_write(h)
            # node 0 also reads its own write: NOT a race by itself
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)
        else:
            yield from ctx.start_read(h)  # concurrent foreign read: race
            yield from ctx.end_read(h)
        yield from ctx.barrier(sid)

    res = run_spmd(prog, backend="ace", n_procs=2)
    races = _race_protocol(res).races
    assert len(races) == 1
    _, _, readers, writers = races[0]
    assert writers == (0,)
    assert 1 in readers


def test_race_detect_updates_propagate_like_static_update():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("RaceDetect")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            yield from ctx.start_write(h)
            h.data[:] = [1, 2, 3, 4]
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.start_read(h)
        out = list(h.data)
        yield from ctx.end_read(h)
        yield from ctx.barrier(sid)
        return out

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [[1.0, 2.0, 3.0, 4.0]] * 3
    assert _race_protocol(res).races == []


# ------------------------------------------------------------------ HwSC
def test_hwsc_same_semantics_as_sc():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space(prog.proto)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        for _ in range(6):
            yield from ctx.lock(rid)
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
            yield from ctx.unlock(rid)
        yield from ctx.barrier()
        data = yield from ctx.read_region(h)
        return data[0]

    results = {}
    times = {}
    for proto in ("SC", "HwSC"):
        prog.proto = proto
        res = run_spmd(prog, backend="ace", n_procs=4)
        results[proto] = res.results
        times[proto] = res.time
    assert results["SC"] == results["HwSC"] == [24.0] * 4
    # hardware access checks beat the software fast path
    assert times["HwSC"] < times["SC"]


def test_hwsc_skips_software_dispatch_charge():
    def prog(ctx):
        sid = yield from ctx.new_space(prog.proto)
        rid = yield from ctx.gmalloc(sid, 1)
        h = yield from ctx.map(rid)
        for _ in range(200):
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)

    prog.proto = "HwSC"
    t_hw = run_spmd(prog, backend="ace", n_procs=1).time
    prog.proto = "SC"
    t_sw = run_spmd(prog, backend="ace", n_procs=1).time
    # 200 read pairs: hw path ~3 cycles each vs sw ~46
    assert t_sw - t_hw > 200 * 30


# ---------------------------------------------------------- BufferedUpdate
def test_buffered_update_any_writer_per_epoch():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("BufferedUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 2)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        yield from ctx.barrier(sid)
        for epoch in range(3):
            writer = (epoch + 1) % ctx.n_procs  # non-home writers too
            if ctx.nid == writer:
                yield from ctx.start_write(h)
                h.data[:] = [epoch, epoch * 10]
                yield from ctx.end_write(h)
            yield from ctx.barrier(sid)
            yield from ctx.start_read(h)
            assert list(h.data) == [epoch, epoch * 10], (ctx.nid, epoch)
            yield from ctx.end_read(h)
        return True

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert all(res.results)


def test_buffered_update_batches_multiple_writes():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("BufferedUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        yield from ctx.barrier(sid)
        if ctx.nid == 1:
            for _ in range(50):  # 50 writes -> ONE shipment at the barrier
                yield from ctx.start_write(h)
                h.data[0] += 1
                yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.start_read(h)
        out = h.data[0]
        yield from ctx.end_read(h)
        return out

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results == [50.0, 50.0]
    assert res.stats.get("msg.proto.BufferedUpdate.update") == 1


def test_buffered_update_two_writers_same_epoch_raises():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("BufferedUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(boxes["rid"])
        yield from ctx.barrier(sid)
        yield from ctx.start_write(h)  # everyone writes: assertion violated
        h.data[0] = ctx.nid
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)

    with pytest.raises(ProtocolMisuse, match="one writer per epoch"):
        run_spmd(prog, backend="ace", n_procs=2)
