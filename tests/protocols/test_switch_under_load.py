"""Online ``Ace_ChangeProtocol`` with requests still in flight.

The conformance matrix (``test_conformance_matrix``) pivots every
protocol through a quiescent round trip: a barrier right before each
switch, so no node has coherence work outstanding when the flush
starts.  The serving stack (:mod:`repro.serve`) switches protocols
*mid-traffic*: the controller's collective lands while other nodes are
still streaming reads, so early arrivals flush and wait while
stragglers keep issuing accesses under the old protocol.

This matrix drives every registered protocol through that shape:

* a legal writer publishes under ``P`` and the space barrier makes it
  visible;
* every node then streams reads with **staggered** depth (node ``n``
  reads ``3 + 2n`` times), so the switch collective begins while the
  deepest reader is mid-stream;
* switch to the partner, re-map (old handles are stale by design),
  read again, write fresh values under the partner;
* switch *back* while readers are again staggered — the partner must
  flush its dirty state to base mid-load — and verify the fresh values
  under ``P``.

Every read everywhere must see the values current at that point in the
program; the tier-2 sweep replays the same shape over a lossy,
duplicating fabric (protocol x seed x fault mix via hypothesis).
"""

from __future__ import annotations

import importlib
import pkgutil

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.protocols
from repro.dsm.faults import FaultPlan, LinkFaults
from repro.facade import run_spmd
from repro.protocols.registry import default_registry

# Exhaustive-by-construction, same as the conformance matrix: import
# every protocol module so registration side effects have all run.
for _mod in pkgutil.iter_modules(repro.protocols.__path__):
    importlib.import_module(f"repro.protocols.{_mod.name}")

N_PROCS = 3
VALUES = [4.0, 2.0]
VALUES2 = [7.0, 9.0]


def _writer(protocol: str) -> int:
    return 0 if default_registry.spec(protocol).home_writer else 1


def _partner(protocol: str) -> str:
    return "SC" if protocol != "SC" else "StaticUpdate"


def _switch_under_load_program(protocol: str, boxes: dict):
    partner = _partner(protocol)
    writer, partner_writer = _writer(protocol), _writer(partner)

    def prog(ctx):
        sid = yield from ctx.new_space(protocol)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, len(VALUES))
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        if ctx.nid == writer:
            yield from ctx.start_write(h)
            h.data[:] = VALUES
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)

        # Staggered read stream: node 0 reaches the switch first and
        # starts flushing while node N-1 is still reading under P.
        under_p = []
        for _ in range(3 + 2 * ctx.nid):
            under_p.append(list((yield from ctx.read_region(h))))

        yield from ctx.change_protocol(sid, partner)
        h2 = yield from ctx.map(rid)  # old handle is stale by design
        mid = list((yield from ctx.read_region(h2)))
        yield from ctx.barrier(sid)  # everyone sees VALUES before the overwrite
        if ctx.nid == partner_writer:
            yield from ctx.start_write(h2)
            h2.data[:] = VALUES2
            yield from ctx.end_write(h2)
        yield from ctx.barrier(sid)

        # Staggered again (reversed), so the switch *back* also lands
        # mid-stream — this time with dirty partner state to flush.
        under_partner = []
        for _ in range(3 + 2 * (ctx.n_procs - 1 - ctx.nid)):
            under_partner.append(list((yield from ctx.read_region(h2))))

        yield from ctx.change_protocol(sid, protocol)
        h3 = yield from ctx.map(rid)
        back = list((yield from ctx.read_region(h3)))
        return under_p, mid, under_partner, back

    return prog


def _check(res, protocol: str):
    for nid, (under_p, mid, under_partner, back) in enumerate(res.results):
        assert all(r == VALUES for r in under_p), (
            f"node {nid} streamed {under_p} under {protocol} before the switch"
        )
        assert mid == VALUES, f"node {nid} read {mid} right after leaving {protocol}"
        assert all(r == VALUES2 for r in under_partner), (
            f"node {nid} streamed {under_partner} under the partner"
        )
        assert back == VALUES2, f"node {nid} read {back} back under {protocol}"


@pytest.mark.parametrize("protocol", default_registry.names())
def test_switch_lands_mid_stream(protocol):
    boxes: dict = {}
    res = run_spmd(_switch_under_load_program(protocol, boxes), backend="ace", n_procs=N_PROCS)
    _check(res, protocol)
    region = res.backend.runtime.regions.get(boxes["rid"])
    assert list(region.home_data) == VALUES2


# The lossy sweep draws from the drop-hardened protocols — the same
# set test_conformance_faults covers: the remaining protocols ship
# their collectives over raw (unacked, no-retry) posts by design, so a
# dropped message is a legitimate deadlock there, not a switch bug.
FAULT_HARDENED = ["SC", "DynamicUpdate", "StaticUpdate", "SelfInvalidate", "Owned"]


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(FAULT_HARDENED),
    seed=st.integers(min_value=0, max_value=2**16),
    drop=st.floats(min_value=0.0, max_value=0.3),
    dup=st.floats(min_value=0.0, max_value=0.2),
)
def test_switch_mid_stream_survives_lossy_fabric(protocol, seed, drop, dup):
    """The mid-stream switch composes with drop/dup fault injection:
    retried requests may land during the flush window, and duplicated
    acks may replay across the generation bump."""
    boxes: dict = {}
    plan = FaultPlan(seed=seed, default=LinkFaults(drop=drop, dup=dup))
    res = run_spmd(
        _switch_under_load_program(protocol, boxes),
        backend="ace", n_procs=N_PROCS, fault_plan=plan,
    )
    _check(res, protocol)
