"""Behavioral tests for DynamicUpdate and StaticUpdate."""

import pytest

from repro.facade import run_spmd
from repro.protocols.base import ProtocolMisuse


def test_dynamic_update_propagates_to_sharers_immediately():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("DynamicUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 2)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])  # everyone becomes a sharer
        yield from ctx.barrier()
        if ctx.nid == 1:
            yield from ctx.start_write(h)
            h.data[:] = [10.0, 20.0]
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        # No protocol action needed to read: local copies were updated.
        yield from ctx.start_read(h)
        out = list(h.data)
        yield from ctx.end_read(h)
        return out

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results == [[10.0, 20.0]] * 4
    assert res.stats.get("proto.DynamicUpdate.propagate") == 1
    # pushed to 2 sharers (nodes 2, 3): home applied directly, writer excluded
    assert res.stats.get("msg.proto.DynamicUpdate.push") == 2


def test_dynamic_update_home_writer_fans_out():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("DynamicUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        yield from ctx.barrier()
        if ctx.nid == 0:
            yield from ctx.start_write(h)
            h.data[0] = 5.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        return h.data[0]

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [5.0, 5.0, 5.0]


def test_dynamic_update_reads_are_free_after_map():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("DynamicUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        for _ in range(100):
            yield from ctx.start_read(h)
            yield from ctx.end_read(h)
        yield from ctx.barrier()

    res = run_spmd(prog, backend="ace", n_procs=2)
    # only the initial fetch moved data; reads generated no traffic
    assert res.stats.get("msg.proto.DynamicUpdate.fetch") == 1


def test_static_update_pushes_at_barrier_not_at_write():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("StaticUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 2)
        yield from ctx.barrier(None)
        h = yield from ctx.map(boxes["rid"])
        yield from ctx.barrier(sid)
        if ctx.nid == 0:
            yield from ctx.start_write(h)
            h.data[:] = [1.0, 2.0]
            yield from ctx.end_write(h)
            # consumers must NOT see it yet (update waits for the barrier)
        yield from ctx.barrier(sid)
        yield from ctx.start_read(h)
        out = list(h.data)
        yield from ctx.end_read(h)
        return out

    res = run_spmd(prog, backend="ace", n_procs=3)
    assert res.results == [[1.0, 2.0]] * 3
    assert res.stats.get("proto.StaticUpdate.push") == 2  # two sharers


def test_static_update_only_dirty_regions_pushed():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("StaticUpdate")
        if ctx.nid == 0:
            boxes["r1"] = yield from ctx.gmalloc(sid, 1)
            boxes["r2"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier(None)
        h1 = yield from ctx.map(boxes["r1"])
        h2 = yield from ctx.map(boxes["r2"])
        yield from ctx.barrier(sid)
        if ctx.nid == 0:
            yield from ctx.start_write(h1)
            h1.data[0] = 9.0
            yield from ctx.end_write(h1)
        yield from ctx.barrier(sid)
        yield from ctx.barrier(sid)  # second barrier: nothing dirty now
        return (h1.data[0], h2.data[0])

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results == [(9.0, 0.0)] * 2
    assert res.stats.get("proto.StaticUpdate.push") == 1  # one dirty region, one sharer


def test_static_update_rejects_non_home_writer():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("StaticUpdate")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            yield from ctx.start_write(h)
            h.data[0] = 1.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()

    with pytest.raises(ProtocolMisuse, match="producers own their regions"):
        run_spmd(prog, backend="ace", n_procs=2)


def test_null_protocol_rejects_remote_write():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Null")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 1:
            yield from ctx.start_write(h)

    with pytest.raises(ProtocolMisuse, match="writes are home-local"):
        run_spmd(prog, backend="ace", n_procs=2)


def test_null_protocol_local_data_persists_and_costs_nothing():
    def prog(ctx):
        sid = yield from ctx.new_space("Null")
        rid = yield from ctx.gmalloc(sid, 4)
        h = yield from ctx.map(rid)
        for i in range(50):
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        return h.data[0]

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results == [50.0, 50.0]
    assert res.stats.get("msg.proto.Null.fetch") == 0


def test_null_protocol_remote_read_gets_snapshot():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Null")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.start_write(h)
            h.data[0] = 123.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        if ctx.nid == 1:
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.start_read(h)
            out = h.data[0]
            yield from ctx.end_read(h)
            return out

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results[1] == 123.0
