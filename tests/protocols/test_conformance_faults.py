"""Conformance under faults: the round trip survives a lossy fabric.

A protocol's reliability machinery (retry, dedup, ack'd pushes) must
not just keep steady-state accesses correct — protocol *switches* are
where the state space is widest (flush + re-init while requests may
still be retrying).  This re-runs the §3.1 change-protocol round trip
from ``test_conformance_matrix`` for the three paper protocols whose
reliable variants differ, under the small canonical drop+retry plan:

* ``SC`` — request retry with home-side dedup (directory/regioncache);
* ``DynamicUpdate`` — ack'd update + multicast push with per-seq dedup;
* ``StaticUpdate`` — ack'd barrier pushes with per-seq dedup;

plus the two table-native additions, whose handshakes are the widest:

* ``SelfInvalidate`` — synchronous write-back with epoch-keyed dedup
  (a replayed old-epoch write-back must not clobber newer data);
* ``Owned`` — forwarded reads and recall fan-outs where the *ack* is
  the payload, so retries must replay recorded grants, not re-run them.

Region contents must survive both switches bit-exactly and the run
must actually have injected faults (otherwise the test proves
nothing — see the assertion on ``fault.drop``).
"""

from __future__ import annotations

import pytest

from repro.dsm import FaultPlan
from repro.facade import run_spmd

N_PROCS = 2
VALUES = [4.0, 2.0]
SEEDS = [0, 1]

#: (protocol, partner, writer): StaticUpdate asserts producers own
#: their regions, so its writer is the home node 0.
CASES = [
    ("SC", "StaticUpdate", 1),
    ("DynamicUpdate", "SC", 1),
    ("StaticUpdate", "SC", 0),
    ("SelfInvalidate", "SC", 1),
    ("Owned", "SC", 1),
]


@pytest.mark.parametrize("protocol,partner,writer", CASES)
@pytest.mark.parametrize("seed", SEEDS)
def test_round_trip_under_drop_retry(protocol, partner, writer, seed):
    boxes: dict = {}

    def prog(ctx):
        sid = yield from ctx.new_space(protocol)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, len(VALUES))
        yield from ctx.barrier()
        rid = boxes["rid"]
        h = yield from ctx.map(rid)
        if ctx.nid == writer:
            yield from ctx.start_write(h)
            h.data[:] = VALUES
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)

        yield from ctx.change_protocol(sid, partner)  # P flushes to base
        h2 = yield from ctx.map(rid)
        mid = yield from ctx.read_region(h2)
        yield from ctx.unmap(h2)
        yield from ctx.barrier(sid)

        yield from ctx.change_protocol(sid, protocol)  # partner flushes back
        h3 = yield from ctx.map(rid)
        back = yield from ctx.read_region(h3)
        return list(mid), list(back)

    # The round trip is only ~a dozen messages; a hefty drop rate is
    # needed for every seed to actually injure the run.
    plan = FaultPlan.drop_retry(seed, drop=0.35)
    res = run_spmd(prog, backend="ace", n_procs=N_PROCS, fault_plan=plan)
    for nid, (mid, back) in enumerate(res.results):
        assert mid == VALUES, f"node {nid} read {mid} under {partner} after {protocol} flush"
        assert back == VALUES, f"node {nid} read {back} back under {protocol}"
    region = res.backend.runtime.regions.get(boxes["rid"])
    assert list(region.home_data) == VALUES
    assert res.stats.get("fault.drop") > 0, "plan injected nothing; test proves nothing"
