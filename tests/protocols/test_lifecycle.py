"""Protocol lifecycle: flush-to-base on Ace_ChangeProtocol for every
shipped protocol, and cross-protocol data survival."""

import pytest

from repro.facade import run_spmd

PROTOCOLS = ["SC", "Null", "DynamicUpdate", "StaticUpdate", "Migratory",
             "HomeWrite", "Counter", "PipelinedWrite"]


@pytest.mark.parametrize("old", PROTOCOLS)
@pytest.mark.parametrize("new", ["SC", "StaticUpdate"])
def test_data_survives_protocol_change(old, new):
    """Write under protocol `old`, change to `new`, read the value back.

    §3.1: the old protocol's flush leaves home data current, so any
    successor sees the written values.
    """
    if old == new:
        pytest.skip("no-op change")
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space(old)
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 2)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        writer = 0 if old in ("Null", "StaticUpdate", "HomeWrite") else 1
        if ctx.nid == writer:
            yield from ctx.start_write(h)
            h.data[:] = [4.0, 2.0]
            yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.change_protocol(sid, new)
        h2 = yield from ctx.map(boxes["rid"])
        data = yield from ctx.read_region(h2)
        return list(data)

    res = run_spmd(prog, backend="ace", n_procs=2)
    assert res.results == [[4.0, 2.0]] * 2


def test_migratory_flush_brings_data_home():
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("Migratory")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        h = yield from ctx.map(boxes["rid"])
        if ctx.nid == 3:  # migrate the region far from home
            yield from ctx.start_write(h)
            h.data[0] = 77.0
            yield from ctx.end_write(h)
        yield from ctx.barrier()
        yield from ctx.change_protocol(sid, "SC")
        if ctx.nid == 0:
            h2 = yield from ctx.map(boxes["rid"])
            data = yield from ctx.read_region(h2)
            return data[0]

    res = run_spmd(prog, backend="ace", n_procs=4)
    assert res.results[0] == 77.0


def test_repeated_phase_switching_water_style():
    """Null <-> PipelinedWrite every 'step', many times (§2.2 pattern)."""
    boxes = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            boxes["rid"] = yield from ctx.gmalloc(sid, 1)
        yield from ctx.barrier()
        for _ in range(3):
            yield from ctx.change_protocol(sid, "Null")
            if ctx.nid == 0:
                h = yield from ctx.map(boxes["rid"])
                yield from ctx.start_write(h)
                h.data[0] += 1
                yield from ctx.end_write(h)
            yield from ctx.barrier(sid)
            yield from ctx.change_protocol(sid, "PipelinedWrite")
            h = yield from ctx.map(boxes["rid"])
            yield from ctx.start_write(h)
            h.data[0] += 1
            yield from ctx.end_write(h)
            yield from ctx.barrier(sid)
        yield from ctx.change_protocol(sid, "SC")
        h = yield from ctx.map(boxes["rid"])
        data = yield from ctx.read_region(h)
        return data[0]

    res = run_spmd(prog, backend="ace", n_procs=2)
    # 3 steps x (1 null write by node 0 + 2 pipelined deltas) = 9
    assert res.results == [9.0, 9.0]
