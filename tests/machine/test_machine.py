"""Unit tests for the simulated multicomputer and active messages."""

import pytest

from repro.machine import Machine, MachineConfig
from repro.sim import Delay, Simulator


def make_machine(n=4, **cfg):
    sim = Simulator()
    return sim, Machine(sim, MachineConfig(n_procs=n, **cfg))


def test_config_validation():
    with pytest.raises(ValueError):
        MachineConfig(n_procs=0)
    with pytest.raises(ValueError):
        MachineConfig(network_latency=-1)


def test_config_with_override():
    cfg = MachineConfig().with_(n_procs=8)
    assert cfg.n_procs == 8
    assert cfg.network_latency == MachineConfig().network_latency


def test_message_cost_scales_with_payload():
    cfg = MachineConfig(network_latency=100, per_word_transfer=4)
    assert cfg.message_cost(0) == 100
    assert cfg.message_cost(10) == 140


def test_am_request_delivers_with_latency():
    sim, m = make_machine()
    arrivals = []

    def handler(node, src, value):
        arrivals.append((sim.now, node.nid, src, value))

    def sender():
        yield from m.am_request(0, 2, handler, 42)

    sim.spawn(sender())
    sim.run()
    cfg = m.config
    expected = cfg.am_send_overhead + cfg.network_latency + cfg.am_receive_overhead
    assert arrivals == [(expected, 2, 0, 42)]


def test_payload_words_increase_delivery_time():
    sim, m = make_machine()
    arrivals = []

    def handler(node, src):
        arrivals.append(sim.now)

    def sender():
        yield from m.am_request(0, 1, handler, payload_words=100)

    sim.spawn(sender())
    sim.run()
    cfg = m.config
    assert arrivals[0] == (
        cfg.am_send_overhead
        + cfg.network_latency
        + 100 * cfg.per_word_transfer
        + cfg.am_receive_overhead
    )


def test_rpc_round_trip():
    sim, m = make_machine()

    def handler(node, src, fut, x):
        m.reply(fut, x * 2)

    def caller():
        v = yield from m.rpc(0, 3, handler, 21)
        return (sim.now, v)

    t = sim.spawn(caller())
    sim.run()
    time, value = t.done.result()
    assert value == 42
    cfg = m.config
    one_way = cfg.am_send_overhead + cfg.network_latency + cfg.am_receive_overhead
    assert time == 2 * one_way


def test_post_from_handler_context_chains():
    """home-forwards-to-owner pattern: handler posts to a third node."""
    sim, m = make_machine()

    def owner_handler(node, src, fut):
        m.reply(fut, f"data-from-{node.nid}")

    def home_handler(node, src, fut):
        m.post(node.nid, 3, owner_handler, fut)

    def caller():
        v = yield from m.rpc(0, 1, home_handler)
        return v

    t = sim.spawn(caller())
    sim.run()
    assert t.done.result() == "data-from-3"


def test_stats_count_messages():
    sim, m = make_machine()

    def handler(node, src):
        pass

    def sender():
        yield from m.am_request(0, 1, handler, category="test.cat")
        yield from m.am_request(0, 2, handler, category="test.cat", payload_words=7)

    sim.spawn(sender())
    sim.run()
    assert m.stats.get("msg.test.cat") == 2
    assert m.stats.get("msg.total") == 2
    assert m.stats.get("msg.words") == 7


def test_bad_destination_rejected():
    sim, m = make_machine(n=2)

    def sender():
        yield from m.am_request(0, 5, lambda node, src: None)

    sim.spawn(sender())
    with pytest.raises(ValueError, match="destination"):
        sim.run()


def test_hw_barrier_releases_all_at_once():
    sim, m = make_machine(n=4)
    release_times = []

    def proc(nid):
        yield Delay(nid * 10)  # staggered arrival
        yield from m.hw_barrier(nid)
        release_times.append((nid, sim.now))

    sim.run_all((proc(i) for i in range(4)), prefix="p")
    times = {t for _, t in release_times}
    assert len(times) == 1
    assert times.pop() == 30 + Machine.HW_BARRIER_COST


def test_hw_barrier_repeated_generations():
    sim, m = make_machine(n=3)
    log = []

    def proc(nid):
        for it in range(3):
            yield Delay(1 + nid)
            yield from m.hw_barrier(nid)
            log.append((it, nid, sim.now))

    sim.run_all((proc(i) for i in range(3)), prefix="p")
    # within each iteration all three procs release at the same time
    for it in range(3):
        times = {t for i, n, t in log if i == it}
        assert len(times) == 1


def test_blocking_handler_promoted_to_task():
    sim, m = make_machine()
    done = []

    def blocking_handler(node, src, fut):
        yield Delay(500)
        m.reply(fut, "slow")
        done.append(sim.now)

    def caller():
        v = yield from m.rpc(0, 1, blocking_handler)
        return v

    t = sim.spawn(caller())
    sim.run()
    assert t.done.result() == "slow"
    assert done and done[0] >= 500
