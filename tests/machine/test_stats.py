"""Unit tests for the stats counters."""

import pytest

from repro.machine import PhaseScopeError, Stats


def test_count_and_get():
    s = Stats()
    assert s.get("x") == 0
    s.count("x")
    s.count("x", 4)
    assert s.get("x") == 5


def test_prefix_filtering():
    s = Stats()
    s.count("crl.read_miss", 2)
    s.count("crl.write_miss")
    s.count("ace.read_miss")
    assert s.with_prefix("crl") == {"crl.read_miss": 2, "crl.write_miss": 1}
    assert s.with_prefix("crl.") == {"crl.read_miss": 2, "crl.write_miss": 1}
    assert s.with_prefix("tempest") == {}


def test_prefix_includes_bare_key():
    # with_prefix("crl") selects the bare key "crl" itself, and the
    # trailing-dot spelling is equivalent.
    s = Stats()
    s.count("crl", 7)
    s.count("crl.read_miss", 2)
    expected = {"crl": 7, "crl.read_miss": 2}
    assert s.with_prefix("crl") == expected
    assert s.with_prefix("crl.") == expected


def test_prefix_respects_token_boundaries():
    # "crl" must not match "crlx.y": the prefix is a whole dot token.
    s = Stats()
    s.count("crl.read_miss")
    s.count("crlx.read_miss")
    s.count("crl_extra")
    assert s.with_prefix("crl") == {"crl.read_miss": 1}


def test_counter_ref_is_live_and_survives_reset():
    s = Stats()
    ref = s.counter_ref()
    ref["hot.key"] += 3
    assert s.get("hot.key") == 3  # in-place bumps visible via get
    s.count("hot.key")
    assert ref["hot.key"] == 4  # and vice versa
    s.reset()
    assert s.get("hot.key") == 0
    ref["hot.key"] += 2  # the pre-reset reference is still the live mapping
    assert s.get("hot.key") == 2
    assert s.counter_ref() is ref


def test_node_scoping():
    s = Stats()
    n3 = s.node(3)
    n3.count("msg.sent")
    n3.count("msg.sent", 2)
    s.node(0).count("msg.sent")
    assert s.get("node3.msg.sent") == 3
    assert s.get("node0.msg.sent") == 1
    assert s.node(3) is n3  # adapters are cached
    assert n3.key("msg.sent") == "node3.msg.sent"
    # write-through composes with counter_ref
    s.counter_ref()[n3.key("msg.sent")] += 1
    assert s.get("node3.msg.sent") == 4


def test_phase_scoping_accumulates_deltas():
    s = Stats()
    s.count("before", 5)
    s.push_phase("iterate")
    s.count("msg.total", 10)
    delta = s.pop_phase()
    assert delta == {"msg.total": 10}  # pre-phase counts excluded
    s.push_phase("iterate")
    s.count("msg.total", 4)
    s.pop_phase()
    assert s.phases["iterate"] == {"msg.total": 14}  # re-entry accumulates
    assert s.get("msg.total") == 14  # global counters unaffected by scoping


def test_phase_nesting_and_context_manager():
    s = Stats()
    with s.phase("outer"):
        s.count("a")
        assert s.current_phase == "outer"
        with s.phase("inner"):
            s.count("b")
        assert s.phases["inner"] == {"b": 1}
    assert s.phases["outer"] == {"a": 1, "b": 1}  # inner counts roll up
    assert s.current_phase is None


def test_pop_phase_without_push_raises():
    with pytest.raises(ValueError):
        Stats().pop_phase()


def test_pop_phase_without_push_is_structured():
    with pytest.raises(PhaseScopeError) as exc:
        Stats().pop_phase()
    assert exc.value.stack == []
    assert "phase stack: <empty>" in str(exc.value)


def test_require_balanced_names_leftover_phases():
    s = Stats()
    s.push_phase("setup")
    s.push_phase("iterate")
    with pytest.raises(PhaseScopeError) as exc:
        s.require_balanced()
    assert exc.value.stack == ["setup", "iterate"]
    assert "setup > iterate" in str(exc.value)
    # Balance it out and the check passes.
    s.pop_phase()
    s.pop_phase()
    s.require_balanced()


def test_run_spmd_rejects_leftover_phase():
    from repro.facade import run_spmd

    def prog(ctx):
        ctx.push_phase("never-closed")
        yield from ctx.barrier()

    with pytest.raises(PhaseScopeError) as exc:
        run_spmd(prog, n_procs=2)
    assert exc.value.stack == ["never-closed"]


def test_snapshot_is_a_copy():
    s = Stats()
    s.count("a")
    snap = s.snapshot()
    s.count("a")
    assert snap == {"a": 1}
    assert s.get("a") == 2


def test_reset():
    s = Stats()
    s.count("a", 10)
    s.push_phase("p")
    s.count("b")
    s.pop_phase()
    s.push_phase("open")
    s.reset()
    assert s.get("a") == 0
    assert s.snapshot() == {}
    assert s.phases == {}
    assert s.current_phase is None
