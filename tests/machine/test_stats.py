"""Unit tests for the stats counters."""

from repro.machine import Stats


def test_count_and_get():
    s = Stats()
    assert s.get("x") == 0
    s.count("x")
    s.count("x", 4)
    assert s.get("x") == 5


def test_prefix_filtering():
    s = Stats()
    s.count("crl.read_miss", 2)
    s.count("crl.write_miss")
    s.count("ace.read_miss")
    assert s.with_prefix("crl") == {"crl.read_miss": 2, "crl.write_miss": 1}
    assert s.with_prefix("crl.") == {"crl.read_miss": 2, "crl.write_miss": 1}
    assert s.with_prefix("tempest") == {}


def test_snapshot_is_a_copy():
    s = Stats()
    s.count("a")
    snap = s.snapshot()
    s.count("a")
    assert snap == {"a": 1}
    assert s.get("a") == 2


def test_reset():
    s = Stats()
    s.count("a", 10)
    s.reset()
    assert s.get("a") == 0
    assert s.snapshot() == {}
