#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulation core.

Runs the paper workload suites (fig7a, fig7b, table4) end to end and
records, per suite:

* ``wall_s`` — wall-clock seconds for the whole suite;
* ``events`` — kernel events executed (queue pops + inline trampoline
  steps; see ``Simulator.events``), summed over the suite's runs;
* ``events_per_s`` — the headline throughput number;
* ``rows`` — the simulated-cycle tables the suite produces, exactly as
  the experiments report them.  These must be bit-identical across
  kernel optimizations (the golden-trace tests pin the same property);
  the bench records them so a perf regression hunt can double as a
  correctness check.

Output goes to ``BENCH_<stamp>.json`` (override with ``--out``), so the
repository accumulates a performance trajectory over time.  Compare two
files with ``--baseline``::

    PYTHONPATH=src python tools/bench.py                  # full run
    PYTHONPATH=src python tools/bench.py --smoke          # CI sanity run
    PYTHONPATH=src python tools/bench.py --baseline BENCH_seed.json

``--smoke`` runs a single small workload (TSP on 2 nodes) — enough to
prove the harness and the JSON schema work without burning CI minutes.
Combined with ``--baseline BENCH_seed.json --gate`` it is CI's
regression gate: simulated cycles must be bit-identical to the seed,
and the deterministic kernel-event count (plus a coarse wall-clock
backstop) must not regress.

The harness tolerates kernels that predate the ``Simulator.events``
counter (it records ``events: null``), so it can be pointed at an old
checkout to capture a baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path


def _events(res) -> int | None:
    """Kernel event count for one run (None on pre-counter kernels)."""
    return getattr(res.machine.sim, "events", None)


def _acc(total, n):
    if total is None or n is None:
        return None
    return total + n


def suite_fig7a(n_procs: int, apps: list[str] | None = None, tracer_factory=None) -> dict:
    """Ace vs CRL under SC — the paper's headline comparison.

    ``tracer_factory`` (used by ``--trace-overhead``) builds a fresh
    :class:`repro.obs.TraceBuffer` per run; simulated cycles must be
    bit-identical with and without one.
    """
    from repro.facade import run_spmd
    from repro.harness.experiments import _PROGRAMS, FIG7_WORKLOADS

    rows, events = [], 0
    t0 = time.perf_counter()
    for app, make_wl in FIG7_WORKLOADS.items():
        if apps is not None and app not in apps:
            continue
        program_fn, sc_plan, _ = _PROGRAMS[app]
        wl = make_wl()
        for backend in ("crl", "ace"):
            tracer = tracer_factory() if tracer_factory is not None else None
            res = run_spmd(program_fn(wl, sc_plan), backend=backend, n_procs=n_procs, tracer=tracer)
            rows.append([app, backend, res.time])
            events = _acc(events, _events(res))
    return _result(rows, events, time.perf_counter() - t0)


def suite_fig7b(n_procs: int) -> dict:
    """SC vs application-specific protocols, on Ace."""
    from repro.facade import run_spmd
    from repro.harness.experiments import _PROGRAMS, FIG7_WORKLOADS

    rows, events = [], 0
    t0 = time.perf_counter()
    for app, make_wl in FIG7_WORKLOADS.items():
        program_fn, sc_plan, custom_plan = _PROGRAMS[app]
        wl = make_wl()
        for variant, plan in (("SC", sc_plan), ("custom", custom_plan)):
            res = run_spmd(program_fn(wl, plan), backend="ace", n_procs=n_procs)
            rows.append([app, variant, res.time])
            events = _acc(events, _events(res))
    return _result(rows, events, time.perf_counter() - t0)


def suite_table4(n_procs: int, apps: list[str] | None = None) -> dict:
    """The compiler-optimization ladder (acec → simulator)."""
    from repro.compiler import OPT_BASE, compile_source, run_compiled
    from repro.harness.experiments import TABLE4_KERNELS, TABLE4_LEVELS

    rows, events = [], 0
    t0 = time.perf_counter()
    for app, spec in TABLE4_KERNELS.items():
        if apps is not None and app not in apps:
            continue
        wl = spec["wl"]
        host = spec["host"](wl)
        src = spec["source"](wl)
        for level in TABLE4_LEVELS:
            run = run_compiled(compile_source(src, opt=level), n_procs=n_procs, host_data=host)
            rows.append([app, level.name, run.time])
            events = _acc(events, _events(run.run_result))
        hand = run_compiled(
            compile_source(spec["hand"](wl), opt=OPT_BASE), n_procs=n_procs, host_data=host
        )
        rows.append([app, "hand", hand.time])
        events = _acc(events, _events(hand.run_result))
    return _result(rows, events, time.perf_counter() - t0)


def suite_serve(n_procs: int, requests: int = 2048) -> dict:
    """The serving stack (DESIGN.md §16): statics bracketing adaptive.

    One seeded workload with the mid-run read/write-mix shift, run
    under the two regime-best static protocols and the adaptive
    controller.  Cycle rows are deterministic (seeded traffic +
    deterministic controller), so the bench doubles as the serve
    determinism gate.
    """
    from repro.serve import AdaptiveController, ServeWorkload, run_serve

    wl = ServeWorkload(
        n_keys=64, n_shards=4, n_requests=requests, batch=64,
        read_frac=0.95, shift_at=0.5, shift_read_frac=0.1, seed=11,
    )
    rows, events = [], 0
    t0 = time.perf_counter()
    for config in ("DynamicUpdate", "Migratory", "adaptive"):
        if config == "adaptive":
            ctl = AdaptiveController({s: "DynamicUpdate" for s in range(wl.n_shards)})
            _, rep = run_serve(wl, controller=ctl, n_procs=n_procs, n_dir_shards=2)
        else:
            _, rep = run_serve(wl, protocol=config, n_procs=n_procs, n_dir_shards=2)
        rows.append(["serve", config, rep["cycles"]])
        events = _acc(events, rep["events"])
    return _result(rows, events, time.perf_counter() - t0)


def _result(rows: list, events: int | None, wall: float) -> dict:
    return {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": round(events / wall) if events else None,
        "rows": rows,
    }


SUITES = {"fig7a": suite_fig7a, "fig7b": suite_fig7b, "serve": suite_serve, "table4": suite_table4}


def _repeated(fn, repeat: int, **kw) -> dict:
    """Run a suite ``repeat`` times; report best-of-N wall with spread.

    Wall-clock numbers on shared CI runners are noisy; min is the
    standard "closest to true cost" estimator, and the spread block
    (min/median/max/stddev over all N runs) lets a reader judge how
    trustworthy a comparison is.  Simulated-cycle rows and kernel event
    counts must be bit-identical across repeats — the suite result says
    so if they are not (``nondeterministic: true``), which would be a
    determinism bug worth more than any perf number.
    """
    runs = [fn(**kw) for _ in range(repeat)]
    walls = [r["wall_s"] for r in runs]
    best = min(runs, key=lambda r: r["wall_s"])
    best["spread"] = {
        "runs": repeat,
        "min": round(min(walls), 4),
        "median": round(statistics.median(walls), 4),
        "max": round(max(walls), 4),
        "stddev": round(statistics.stdev(walls), 4) if repeat > 1 else 0.0,
    }
    if any(r["rows"] != runs[0]["rows"] or r["events"] != runs[0]["events"] for r in runs[1:]):
        best["nondeterministic"] = True  # pragma: no cover - determinism bug canary
    return best


def host_fingerprint() -> dict:
    """Who produced these numbers: wall-clock comparisons across hosts
    or interpreters are meaningless without this block."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


def run_bench(suites: list[str], n_procs: int, smoke: bool = False, repeat: int = 1) -> dict:
    report = {
        "stamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "host": host_fingerprint(),
        "n_procs": n_procs,
        "smoke": smoke,
        "repeat": repeat,
        "suites": {},
    }
    if smoke:
        report["suites"]["smoke"] = _repeated(suite_fig7a, repeat, n_procs=2, apps=["TSP"])
        # the compiler path gets its own smoke entry (TSP kernel, all
        # four levels + hand, both the gate's cycles and a throughput
        # signal for the closure backend)
        report["suites"]["smoke_table4"] = _repeated(suite_table4, repeat, n_procs=2, apps=["TSP"])
        # tiny serving run: proves the serve stack and its determinism
        # without burning minutes (absent from old baselines, so the
        # gate's compare() simply skips it there)
        report["suites"]["smoke_serve"] = _repeated(suite_serve, repeat, n_procs=2, requests=256)
        return report
    for name in suites:
        print(f"running suite {name} ...", file=sys.stderr)
        report["suites"][name] = _repeated(SUITES[name], repeat, n_procs=n_procs)
    return report


def compare(
    report: dict,
    baseline: dict,
    gate: bool = False,
    events_tolerance: float = 1.05,
    wall_factor: float = 3.0,
) -> list[str]:
    """Human-readable speedup lines for suites present in both reports.

    Simulated-cycle rows must match exactly — a kernel change that
    alters them is a correctness bug, and the comparison says so.

    With ``gate=True`` the lines also flag performance regressions:

    * ``events`` (kernel steps; deterministic and host-independent, so
      it is the meaningful "no worse" signal) may not grow past
      ``events_tolerance`` × baseline;
    * ``wall_s`` may not exceed ``wall_factor`` × baseline — a gross
      backstop only, since baselines travel across hosts.
    """
    lines = []
    for name, cur in report["suites"].items():
        base = baseline.get("suites", {}).get(name)
        if base is None:
            continue
        speedup = base["wall_s"] / cur["wall_s"] if cur["wall_s"] else float("inf")
        cycles_ok = base["rows"] == cur["rows"]
        line = (
            f"{name}: {base['wall_s']:.3f}s -> {cur['wall_s']:.3f}s "
            f"({speedup:.2f}x)  cycles {'identical' if cycles_ok else 'DIFFER (BUG)'}"
        )
        if gate:
            base_ev, cur_ev = base.get("events"), cur.get("events")
            if base_ev and cur_ev and cur_ev > base_ev * events_tolerance:
                line += f"  events {base_ev} -> {cur_ev} REGRESSED"
            if base["wall_s"] and cur["wall_s"] > base["wall_s"] * wall_factor:
                line += f"  wall REGRESSED (> {wall_factor:.1f}x baseline)"
            # throughput delta is informational (host-dependent): the
            # gate itself stays on cycles + events + the wall backstop
            base_eps, cur_eps = base.get("events_per_s"), cur.get("events_per_s")
            if base_eps and cur_eps:
                delta = (cur_eps - base_eps) / base_eps * 100
                line += f"  throughput {base_eps} -> {cur_eps} events/s ({delta:+.1f}%)"
        lines.append(line)
    if gate and not lines:
        lines.append("no suites in common with baseline: REGRESSED (gate has nothing to check)")
    return lines


def profile_suite(name: str, n_procs: int, out: Path | None, top: int = 20) -> int:
    """cProfile one suite; dump the top-N cumulative entries as JSON.

    The artifact answers "what is the next hot path?" without ad-hoc
    scripting: each entry carries calls, tottime, and cumtime, sorted
    by cumulative time, plus the suite's usual wall/event numbers so
    the profile is anchored to a throughput measurement.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    suite = SUITES[name](n_procs=n_procs)
    profiler.disable()

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    entries = []
    for func in stats.fcn_list[:top]:  # fcn_list is in sort order
        cc, nc, tt, ct, _callers = stats.stats[func]
        filename, lineno, funcname = func
        entries.append(
            {
                "function": f"{filename}:{lineno}({funcname})",
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    report = {
        "stamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "suite": name,
        "n_procs": n_procs,
        "host": host_fingerprint(),
        "wall_s": suite["wall_s"],
        "events": suite["events"],
        "events_per_s": suite["events_per_s"],
        "sort": "cumulative",
        "top": entries,
    }
    path = out or Path(f"PROFILE_{name}_{report['stamp'].replace(':', '')}.json")
    path.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {path}")
    for e in entries[:5]:
        print(f"  {e['cumtime_s']:8.3f}s cum  {e['function']}")
    return 0


def trace_overhead(n_procs: int) -> int:
    """Run fig7a with tracing off, then on; report the wall-clock delta.

    The simulated-cycle rows must be bit-identical — tracing is pure
    observation.  Returns a nonzero exit code if they differ.
    """
    from repro.obs import TraceBuffer

    print("fig7a with tracing off ...", file=sys.stderr)
    off = suite_fig7a(n_procs=n_procs)
    print("fig7a with tracing on ...", file=sys.stderr)
    on = suite_fig7a(n_procs=n_procs, tracer_factory=lambda: TraceBuffer(capacity=1 << 18))
    overhead = (on["wall_s"] - off["wall_s"]) / off["wall_s"] * 100 if off["wall_s"] else 0.0
    identical = off["rows"] == on["rows"]
    print(
        f"trace overhead (fig7a, {n_procs} procs): "
        f"{off['wall_s']:.3f}s off -> {on['wall_s']:.3f}s on "
        f"({overhead:+.1f}% wall)  cycles {'identical' if identical else 'DIFFER (BUG)'}"
    )
    return 0 if identical else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suites", nargs="+", choices=sorted(SUITES), default=sorted(SUITES))
    parser.add_argument("--procs", type=int, default=4, help="simulated processors (default 4)")
    parser.add_argument("--smoke", action="store_true", help="tiny CI run: one small workload")
    parser.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="run each suite N times; record best-of-N wall with "
                             "min/median/max/stddev spread (default 1)")
    parser.add_argument("--trace-overhead", action="store_true",
                        help="run fig7a off+on tracing, report wall delta, check cycles identical")
    parser.add_argument("--profile", choices=sorted(SUITES), default=None, metavar="SUITE",
                        help="cProfile one suite; dump top-20 cumulative to a JSON artifact")
    parser.add_argument("--out", type=Path, default=None, help="output path (default BENCH_<stamp>.json)")
    parser.add_argument("--baseline", type=Path, default=None, help="earlier BENCH_*.json to compare against")
    parser.add_argument("--gate", action="store_true",
                        help="fail on perf regressions vs --baseline, not just cycle mismatches")
    args = parser.parse_args(argv)

    if args.trace_overhead:
        return trace_overhead(n_procs=args.procs)
    if args.profile:
        return profile_suite(args.profile, n_procs=args.procs, out=args.out)

    # Read the baseline up front: a bad path should fail before the
    # suites burn minutes, not after.
    baseline = json.loads(args.baseline.read_text()) if args.baseline else None
    if args.repeat < 1:
        parser.error(f"--repeat must be >= 1 (got {args.repeat})")
    report = run_bench(args.suites, n_procs=args.procs, smoke=args.smoke, repeat=args.repeat)
    out = args.out or Path(f"BENCH_{report['stamp'].replace(':', '')}.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")
    for name, suite in report["suites"].items():
        eps = suite["events_per_s"]
        spread = suite.get("spread")
        line = (
            f"  {name}: {suite['wall_s']:.3f}s, {suite['events']} events"
            + (f", {eps} events/s" if eps else "")
        )
        if spread and spread["runs"] > 1:
            line += (f"  [best of {spread['runs']}: median {spread['median']:.3f}s, "
                     f"stddev {spread['stddev']:.3f}s]")
        print(line)
    if baseline is not None:
        lines = compare(report, baseline, gate=args.gate)
        print(f"vs {args.baseline}:")
        for line in lines:
            print("  " + line)
        if any("DIFFER" in line or "REGRESSED" in line for line in lines):
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
