#!/usr/bin/env python
"""Serving-workload driver: workload spec in, throughput/latency report out.

Runs the sharded KV service (:mod:`repro.serve`, DESIGN.md §16) on a
workload described entirely by command-line flags, and prints a
JSON-friendly report: simulated cycles, requests per kilocycle,
bucketed completion-latency percentiles, per-shard read/write mix, and
— in adaptive mode — the controller's full decision audit.

Three modes::

    PYTHONPATH=src python tools/serve.py --protocol SC        # one static run
    PYTHONPATH=src python tools/serve.py --adaptive           # one adaptive run
    PYTHONPATH=src python tools/serve.py --compare            # the experiment

``--compare`` is the adaptive-vs-static experiment from the issue: it
runs every serving-candidate protocol as a uniform static config plus
the adaptive controller on the same seeded workload, prints the
ranking, and records everything in one JSON artifact (``--out``; the
committed ``SERVE_seed.json`` at the repo root is this tool's output
on the default flags).  Exit status in compare mode is 0 only if
adaptive beat every static config on simulated cycles.

Identical flags (same seed) reproduce identical cycle counts — the
report is a deterministic function of the command line.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.protocols import default_registry
from repro.serve import AdaptiveController, ServeWorkload, run_serve


def workload_from_args(args) -> ServeWorkload:
    return ServeWorkload(
        n_keys=args.keys,
        n_shards=args.shards,
        n_requests=args.requests,
        zipf_s=args.zipf,
        read_frac=args.read_frac,
        shift_at=args.shift_at,
        shift_read_frac=args.shift_read_frac,
        rate=args.rate,
        batch=args.batch,
        think_cycles=args.think,
        seed=args.seed,
    )


def one_run(workload: ServeWorkload, args, *, protocol=None, controller=None) -> dict:
    t0 = time.perf_counter()
    _, report = run_serve(
        workload,
        protocol=protocol,
        controller=controller,
        n_procs=args.procs,
        n_dir_shards=args.dir_shards,
    )
    report["wall_s"] = round(time.perf_counter() - t0, 4)
    report["events_per_s"] = (
        round(report["events"] / report["wall_s"]) if report["wall_s"] else None
    )
    return report


def make_adaptive(workload: ServeWorkload) -> AdaptiveController:
    return AdaptiveController(
        {s: "DynamicUpdate" for s in range(workload.n_shards)}
    )


def run_compare(workload: ServeWorkload, args) -> tuple[dict, int]:
    """Every static candidate plus adaptive on the same workload."""
    entries = []
    for name in default_registry.serving_candidates():
        print(f"static {name} ...", file=sys.stderr)
        rep = one_run(workload, args, protocol=name)
        entries.append({"config": f"static:{name}", **rep})
    print("adaptive ...", file=sys.stderr)
    rep = one_run(workload, args, controller=make_adaptive(workload))
    entries.append({"config": "adaptive", **rep})

    entries.sort(key=lambda e: e["cycles"])
    adaptive = next(e for e in entries if e["config"] == "adaptive")
    best_static = min(
        (e for e in entries if e["config"] != "adaptive"), key=lambda e: e["cycles"]
    )
    wins = adaptive["cycles"] < best_static["cycles"]
    result = {
        "stamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "workload": workload.to_dict(),
        "n_procs": args.procs,
        "n_dir_shards": args.dir_shards,
        "entries": entries,
        "adaptive_cycles": adaptive["cycles"],
        "best_static": {"config": best_static["config"], "cycles": best_static["cycles"]},
        "adaptive_wins": wins,
        "adaptive_advantage": round(1 - adaptive["cycles"] / best_static["cycles"], 4),
    }
    return result, 0 if wins else 1


def print_compare(result: dict) -> None:
    print(f"{'config':24s} {'cycles':>10s} {'msgs':>8s} {'p99 lat':>10s} {'switches':>8s}")
    for e in result["entries"]:
        print(
            f"{e['config']:24s} {e['cycles']:10d} {e['msgs']:8d} "
            f"{e['latency']['p99']:10d} {e['switches'] if e['config'] == 'adaptive' else '-':>8}"
        )
    adv = result["adaptive_advantage"] * 100
    verdict = "BEATS" if result["adaptive_wins"] else "DOES NOT BEAT"
    print(
        f"adaptive {verdict} best static ({result['best_static']['config']}): "
        f"{result['adaptive_cycles']} vs {result['best_static']['cycles']} cycles ({adv:+.1f}%)"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    g = parser.add_argument_group("workload")
    g.add_argument("--keys", type=int, default=64, help="key universe size")
    g.add_argument("--shards", type=int, default=4, help="shards (= spaces)")
    g.add_argument("--requests", type=int, default=2048, help="total requests")
    g.add_argument("--zipf", type=float, default=1.1, help="zipf skew exponent")
    g.add_argument("--read-frac", type=float, default=0.95, help="initial read fraction")
    g.add_argument("--shift-at", type=float, default=0.5,
                   help="stream fraction where the mix shifts")
    g.add_argument("--shift-read-frac", type=float, default=0.1,
                   help="read fraction after the shift (use 'none' for no shift)")
    g.add_argument("--rate", type=float, default=40.0, help="arrivals per kilocycle")
    g.add_argument("--batch", type=int, default=64, help="requests per node per control epoch")
    g.add_argument("--think", type=int, default=20, help="handler compute cycles per request")
    g.add_argument("--seed", type=int, default=11, help="traffic seed")
    m = parser.add_argument_group("machine / mode")
    m.add_argument("--procs", type=int, default=4, help="simulated nodes")
    m.add_argument("--dir-shards", type=int, default=2,
                   help="directory-service shards (DirectoryService n_shards)")
    m.add_argument("--protocol", default=None,
                   help="uniform static protocol (see --list for candidates)")
    m.add_argument("--adaptive", action="store_true", help="run the adaptive controller")
    m.add_argument("--compare", action="store_true",
                   help="all static candidates + adaptive; exit 0 iff adaptive wins")
    m.add_argument("--list", action="store_true", help="print serving candidates and exit")
    m.add_argument("--out", type=Path, default=None, help="write the JSON report here")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(default_registry.serving_candidates()))
        return 0
    if isinstance(args.shift_read_frac, str):
        args.shift_read_frac = None if args.shift_read_frac == "none" else float(args.shift_read_frac)
    workload = workload_from_args(args)

    if args.compare:
        result, status = run_compare(workload, args)
        print_compare(result)
    elif args.adaptive:
        result = one_run(workload, args, controller=make_adaptive(workload))
        status = 0
        print(json.dumps({k: v for k, v in result.items() if k != "decisions"}, indent=2))
        print(f"switches: {result['switches']}  final: {result['protocols_final']}")
    else:
        result = one_run(workload, args, protocol=args.protocol or "SC")
        status = 0
        print(json.dumps(result, indent=2))

    if args.out:
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
