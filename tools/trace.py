#!/usr/bin/env python
"""Record traced workload runs; export JSONL + Perfetto; print summaries.

For each requested (app, protocol-variant) pair this runs the bench
workload with the observability layer on (``repro.obs``), writes

* ``<out>/<app>-<variant>.trace.jsonl`` — structured events, one JSON
  object per line (header line carries drop counts and histograms);
* ``<out>/<app>-<variant>.perfetto.json`` — load it at
  https://ui.perfetto.dev: one track per node, flow arrows on the
  causal send→receive edges, RPC round trips as slices, phases as
  spans;

and prints a per-(app, protocol) message-mix / stall summary — the
trace-level view of the paper's Table 4 story (why a custom protocol
wins: fewer messages, fewer misses, less stall time).

    PYTHONPATH=src python tools/trace.py                       # EM3D + TSP, SC vs custom
    PYTHONPATH=src python tools/trace.py --apps EM3D --variants SC static --procs 8
    PYTHONPATH=src python tools/trace.py --summary-only
    PYTHONPATH=src python tools/trace.py --summary-only --json -   # summaries as JSON
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def summary_rows(label: tuple[str, str], summary: dict) -> list:
    """One table row per (app, variant) from an obs.run_summary dict."""
    top = ", ".join(f"{cat.rsplit('.', 1)[-1]}:{n}" for cat, n in list(summary["mix"].items())[:3])
    return [
        label[0],
        label[1],
        summary["cycles"],
        summary["msg_total"],
        summary["msg_words"],
        summary["stall_total"],
        top,
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="+",
                        default=["Barnes-Hut", "BSC", "EM3D", "TSP", "Water"],
                        help="bench apps to record (default: all five)")
    parser.add_argument("--variants", nargs="+", default=["SC", "custom"],
                        help="protocol variants: SC, custom; EM3D also dynamic, static")
    parser.add_argument("--backend", default="ace", choices=["ace", "crl"])
    parser.add_argument("--procs", type=int, default=4, help="simulated processors (default 4)")
    parser.add_argument("--capacity", type=int, default=1 << 18,
                        help="trace ring capacity in events (default 262144)")
    parser.add_argument("--out", type=Path, default=Path("traces"),
                        help="output directory (default ./traces)")
    parser.add_argument("--summary-only", action="store_true",
                        help="print summaries without writing trace files")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also emit the run summaries as one JSON document "
                             "('-' for stdout; suppresses the text report there)")
    args = parser.parse_args(argv)

    from repro.harness.experiments import format_table, trace_run
    from repro.obs import run_summary, to_jsonl, to_perfetto

    if not args.summary_only:
        args.out.mkdir(parents=True, exist_ok=True)

    rows = []
    details = []
    for app in args.apps:
        for variant in args.variants:
            res, buf = trace_run(
                app, variant, backend=args.backend, n_procs=args.procs,
                capacity=args.capacity,
            )
            summary = run_summary(res, buf)
            proto = "SC" if variant == "SC" else f"{variant}"
            rows.append(summary_rows((app, proto), summary))
            details.append((app, proto, summary))
            if not args.summary_only:
                stem = f"{app.lower()}-{variant.lower()}"
                jsonl = args.out / f"{stem}.trace.jsonl"
                perfetto = args.out / f"{stem}.perfetto.json"
                n = to_jsonl(buf, jsonl)
                to_perfetto(buf, perfetto)
                print(f"wrote {jsonl} and {perfetto} ({n} events, "
                      f"{buf.dropped} dropped)", file=sys.stderr)

    if args.json is not None:
        doc = {
            "backend": args.backend,
            "procs": args.procs,
            "runs": {f"{app}/{proto}": summary for app, proto, summary in details},
        }
        if args.json == "-":
            json.dump(doc, sys.stdout, indent=2, sort_keys=True)
            print()
            return 0
        Path(args.json).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)

    print(format_table(
        f"Message mix / stall summary ({args.backend}, {args.procs} procs)",
        ["app", "protocol", "cycles", "msgs", "words", "stall_cyc", "top categories"],
        rows,
    ))
    for app, proto, summary in details:
        if summary["hists"]:
            print(f"\n{app} [{proto}] latency histograms (cycles):")
            for name, digest in summary["hists"].items():
                print(f"  {name:32s} n={digest['count']:<6d} mean={digest['mean']:<9} "
                      f"p50={digest['p50']:<7d} p99={digest['p99']:<7d} max={digest['max']}")
        if summary["phases"]:
            print(f"{app} [{proto}] per-phase message totals:")
            for phase, delta in summary["phases"].items():
                msgs = delta.get("msg.total", 0)
                words = delta.get("msg.words", 0)
                print(f"  {phase:12s} msgs={msgs:<8d} words={words}")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
