#!/usr/bin/env python
"""Chaos harness: the paper apps must survive a lossy fabric.

For each (app, variant) in the matrix, runs the workload fault-free,
then re-runs it under seeded fault plans (drop / duplicate / delay by
default — see ``--plan``) and asserts the final results are equal to
the fault-free run.  The retry/dedup machinery in ``repro.dsm.faults``
is what makes that hold; this harness is its end-to-end proof.

A second check (``--stall-check``, on by default) injects a
permanently dead link and asserts the run terminates with a
:class:`~repro.dsm.faults.StallError` whose report names the stuck
region, the home node, and the unreachable node in ``suspects`` —
silent hangs are a bug even under faults the protocol cannot mask.

``--crash`` switches to the crash-stop matrix (DESIGN.md §15): for
each protocol in (SC, Owned, DynamicUpdate) a crash-free baseline of
the shared ring workload is compared against runs that crash-stop one
node mid-run.  Under ``on_crash="recover"`` the survivors must finish
with results bit-identical to the baseline and the victim's task must
retire with a ``Crashed`` marker; under ``on_crash="abort"`` the run
must raise a prompt StallError naming the crashed node first in
``report.suspects``.  Every cell is re-run to prove determinism, and
every cell writes a JSON artifact under ``--out`` recording the epoch
transitions, re-homed region count, and recovery cycle cost.

On any failure the offending fault plan (and stall report, if any) is
written as JSON under ``--out`` so CI can upload it and the run can be
reproduced from artifacts alone::

    PYTHONPATH=src python tools/chaos.py                  # full matrix
    PYTHONPATH=src python tools/chaos.py --apps TSP,EM3D --seeds 0-4
    PYTHONPATH=src python tools/chaos.py --plan drop_retry --procs 8

Results comparison is exact (numpy-aware) except where an app's return
value is legitimately schedule-dependent: TSP's per-node ``jobs_done``
split depends on who wins each work-queue race, so TSP is compared on
the agreed best-tour length and the *total* jobs done; Water's pair
forces accumulate in whatever order nodes win write access to the
shared molecules, and float addition is not associative, so Water is
compared to one-part-in-10^9 instead of bit-exactly (observed
fault-induced deviation is ~1 ulp).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dsm import FaultPlan, StallError  # noqa: E402
from repro.facade import run_spmd  # noqa: E402
from repro.harness import experiments  # noqa: E402

#: (app, variant) pairs checked by default: every app under the SC
#: invalidation protocol, plus EM3D's two update protocols (the three
#: paper protocols whose reliability machinery differs).
def matrix(apps: list[str]) -> list[tuple[str, str]]:
    pairs = [(app, "SC") for app in apps]
    if "EM3D" in apps:
        pairs += [("EM3D", "dynamic"), ("EM3D", "static")]
    return pairs


PLANS = {
    "canonical": FaultPlan.canonical,
    "drop_retry": FaultPlan.drop_retry,
    "none": FaultPlan.none,
}


def canon(app: str, results: list):
    """Reduce per-node results to what must be fault-invariant."""
    if app == "TSP":
        # (best_seen, jobs_done) per node: the winning bound must agree
        # everywhere and all work must be done exactly once, but which
        # node did which prefix is a race the fault plan may re-decide.
        return [r[0] for r in results], sum(r[1] for r in results)
    return results


#: Apps whose results are compared with a tolerance rather than
#: bit-exactly.  Water accumulates pair forces (``+=``) from multiple
#: nodes under a lock; fault-induced delays reorder who acquires the
#: write grant first, and float addition is not associative, so a
#: faulted run legitimately differs by ~1 ulp.
APPROX_APPS = frozenset({"Water"})


def equal(a, b, approx: bool = False) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        if approx:
            return np.allclose(a, b, rtol=1e-9, atol=1e-11)
        return np.array_equal(a, b)
    if isinstance(a, (list, tuple)):
        if not isinstance(b, (list, tuple)) or len(a) != len(b):
            return False
        return all(equal(x, y, approx) for x, y in zip(a, b))
    if isinstance(a, dict):
        if not isinstance(b, dict) or a.keys() != b.keys():
            return False
        return all(equal(v, b[k], approx) for k, v in a.items())
    return bool(a == b)


def run_one(app: str, variant: str, n_procs: int, fault_plan=None):
    program_fn, _, _ = experiments._PROGRAMS[app]
    plan = experiments.plan_for(app, variant)
    wl = experiments.FIG7_WORKLOADS[app]()
    kwargs = {"fault_plan": fault_plan} if fault_plan is not None else {}
    return run_spmd(program_fn(wl, plan), backend="ace", n_procs=n_procs, **kwargs)


def save_artifact(out_dir: Path, name: str, payload: str) -> Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / name
    path.write_text(payload)
    return path


def chaos_matrix(args) -> int:
    failures = 0
    seeds = parse_seeds(args.seeds)
    make_plan = PLANS[args.plan]
    for app, variant in matrix(args.apps):
        t0 = time.time()
        baseline = run_one(app, variant, args.procs)
        want = canon(app, baseline.results)
        print(
            f"{app:>10} [{variant}] fault-free: {baseline.time} cycles "
            f"({time.time() - t0:.2f}s)"
        )
        for seed in seeds:
            plan = make_plan(seed)
            tag = f"{app}-{variant}-seed{seed}"
            t0 = time.time()
            try:
                res = run_one(app, variant, args.procs, fault_plan=plan)
            except StallError as err:
                failures += 1
                print(f"{'':>10} seed {seed}: STALL — {err.report.reason}")
                plan_path = save_artifact(args.out, f"{tag}-plan.json", plan.to_json())
                rep_path = save_artifact(args.out, f"{tag}-stall.json", err.report.to_json())
                print(f"{'':>10} artifacts: {plan_path}, {rep_path}")
                continue
            got = canon(app, res.results)
            faults = res.stats.get("fault.drop") + res.stats.get("fault.dup")
            detail = (
                f"{res.time} cycles, {res.stats.get('fault.drop')} dropped, "
                f"{res.stats.get('fault.dup')} duplicated, "
                f"{res.stats.get('fault.delay')} delayed, "
                f"{res.stats.get('rel.retry')} retries ({time.time() - t0:.2f}s)"
            )
            if equal(want, got, approx=app in APPROX_APPS):
                print(f"{'':>10} seed {seed}: ok — {detail}")
                if args.plan != "none" and faults == 0:
                    print(f"{'':>10} seed {seed}: note — plan injected no faults")
            else:
                failures += 1
                print(f"{'':>10} seed {seed}: RESULT MISMATCH — {detail}")
                plan_path = save_artifact(args.out, f"{tag}-plan.json", plan.to_json())
                print(f"{'':>10} artifact: {plan_path}")
    return failures


def from_sweep(args) -> int:
    """Re-verify the faulted cells of a ``tools/sweep.py`` artifact.

    The sweep records what happened (cycles, fault counters); this mode
    proves it was *correct*: each faulted cell is re-run and compared
    against a fresh fault-free baseline, and its simulated cycles must
    match the artifact exactly (the sweep and the replay see the same
    physics, or somebody's determinism is broken).
    """
    data = json.loads(args.from_sweep.read_text())
    cells = [c for c in data.get("cells", []) if c.get("plan", "none") != "none"]
    if not cells:
        print("chaos: sweep artifact has no faulted cells to verify")
        return 0
    failures = 0
    baselines: dict = {}
    for cell in cells:
        app, variant, procs = cell["app"], cell["variant"], cell["procs"]
        key = (app, variant, procs)
        if key not in baselines:
            baselines[key] = canon(app, run_one(app, variant, procs).results)
        want = baselines[key]
        plan = PLANS[cell["plan"]](cell["seed"])
        tag = f"{app}-{variant}-p{procs}-{cell['plan']}-seed{cell['seed']}"
        try:
            res = run_one(app, variant, procs, fault_plan=plan)
        except StallError as err:
            if cell.get("stalled"):
                print(f"{tag}: stall reproduced (as recorded)")
                continue
            failures += 1
            print(f"{tag}: STALL not present in sweep — {err.report.reason}")
            save_artifact(args.out, f"{tag}-plan.json", plan.to_json())
            save_artifact(args.out, f"{tag}-stall.json", err.report.to_json())
            continue
        problems = []
        if cell.get("stalled"):
            problems.append("sweep recorded a stall; replay completed")
        if not equal(want, canon(app, res.results), approx=app in APPROX_APPS):
            problems.append("results differ from fault-free baseline")
        if cell.get("cycles") is not None and res.time != cell["cycles"]:
            problems.append(f"cycles {res.time} != recorded {cell['cycles']}")
        if problems:
            failures += 1
            print(f"{tag}: FAIL — {'; '.join(problems)}")
            save_artifact(args.out, f"{tag}-plan.json", plan.to_json())
        else:
            print(f"{tag}: ok — {res.time} cycles match, results fault-invariant")
    return failures


#: Protocols in the crash matrix: the default invalidation protocol,
#: the paper's owned/migratory protocol, and the single-writer update
#: protocol — three distinct re-homing/rebuild paths.
CRASH_PROTOCOLS = ("SC", "Owned", "DynamicUpdate")


def crash_cell(seed: int, procs: int) -> tuple[int, int]:
    """Deterministic (victim, crash_cycle) for a matrix seed."""
    return seed % procs, 800 + 700 * (seed % 5)


def crash_matrix(args) -> int:
    """Crash-stop one node per cell; recover or abort, deterministically."""
    from repro.dsm.recovery import Crashed  # noqa: E402
    from repro.harness.recovery_workload import ring_program  # noqa: E402

    failures = 0
    seeds = parse_seeds(args.seeds)
    procs = args.procs
    for proto in CRASH_PROTOCOLS:
        t0 = time.time()
        baseline = run_spmd(ring_program(proto), n_procs=procs)
        print(
            f"{proto:>14} crash-free: {baseline.time} cycles ({time.time() - t0:.2f}s)"
        )
        for seed in seeds:
            victim, at = crash_cell(seed, procs)
            plan = FaultPlan.crash(victim, at, seed=seed)
            tag = f"crash-{proto}-seed{seed}"

            # -- recover: survivors finish, bit-identical to baseline --
            t0 = time.time()
            problems = []
            try:
                res = run_spmd(
                    ring_program(proto), n_procs=procs, fault_plan=plan, on_crash="recover"
                )
            except StallError as err:
                failures += 1
                print(f"{'':>14} seed {seed}: RECOVER STALLED — {err.report.reason}")
                save_artifact(args.out, f"{tag}-plan.json", plan.to_json())
                save_artifact(args.out, f"{tag}-stall.json", err.report.to_json())
                continue
            for nid in range(procs):
                if nid == victim:
                    if not isinstance(res.results[nid], Crashed):
                        problems.append(f"victim {nid} did not retire as Crashed")
                elif not equal(res.results[nid], baseline.results[nid]):
                    problems.append(f"survivor {nid} differs from crash-free baseline")
            rec = res.backend.transport.recovery
            summary = rec.summary()
            if summary["epoch"] != 1 or summary["dead"] != [victim]:
                problems.append(f"unexpected membership: {summary['dead']} @ epoch {summary['epoch']}")
            # Determinism: the whole faulted run is a pure function of
            # (program, plan) — replay must match cycle for cycle.
            replay = run_spmd(
                ring_program(proto), n_procs=procs, fault_plan=plan, on_crash="recover"
            )
            if replay.time != res.time or not equal(replay.results, res.results):
                problems.append(f"replay diverged ({replay.time} vs {res.time} cycles)")

            # -- abort: a prompt, suspect-attributed stall ------------
            abort_detail = None
            try:
                run_spmd(
                    ring_program(proto), n_procs=procs, fault_plan=plan, on_crash="abort"
                )
                problems.append("abort mode completed instead of raising StallError")
            except StallError as err:
                suspects = err.report.suspects
                if not suspects or suspects[0] != victim:
                    problems.append(f"abort suspects {suspects} do not lead with victim {victim}")
                abort_detail = {"suspects": suspects, "reason": err.report.reason}

            artifact = {
                "protocol": proto,
                "seed": seed,
                "victim": victim,
                "crash_at": at,
                "baseline_cycles": baseline.time,
                "recover_cycles": res.time,
                "recovery_cycle_cost": res.time - baseline.time,
                "epoch_transitions": summary["epoch"],
                "rehomed_regions": sum(e["rehomed_regions"] for e in summary["events"]),
                "abort": abort_detail,
                "recovery": summary,
                "plan": json.loads(plan.to_json()),
                "problems": problems,
            }
            save_artifact(
                args.out, f"{tag}.json", json.dumps(artifact, indent=2, sort_keys=True)
            )
            detail = (
                f"{res.time} cycles (+{res.time - baseline.time} over baseline), "
                f"{artifact['rehomed_regions']} region(s) re-homed, "
                f"epoch {summary['epoch']} ({time.time() - t0:.2f}s)"
            )
            if problems:
                failures += 1
                print(f"{'':>14} seed {seed}: FAIL — {'; '.join(problems)}")
            else:
                print(
                    f"{'':>14} seed {seed}: ok — victim {victim} @ {at}, {detail}"
                )
    return failures


def stall_check(args) -> int:
    """A permanently dead link must yield a StallReport, not a hang."""
    shared = {}

    def prog(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            shared["rid"] = yield from ctx.gmalloc(sid, 8)
        yield from ctx.barrier()
        handle = yield from ctx.map(shared["rid"])
        yield from ctx.start_read(handle)
        value = float(handle.data[0])
        yield from ctx.end_read(handle)
        yield from ctx.barrier()
        return value

    plan = FaultPlan.dead_link(1, 0)
    try:
        run_spmd(prog, n_procs=2, fault_plan=plan)
    except StallError as err:
        report = err.report
        calls = [c for c in report.in_flight if c["region"] is not None]
        if not calls:
            print("stall-check: FAIL — report names no region")
            save_artifact(args.out, "stall-check-report.json", report.to_json())
            return 1
        call = calls[0]
        # The dead link is 1->0: node 0 (the home) is unreachable, so
        # the report's suspect list must name it.
        if 0 not in report.suspects:
            print(f"stall-check: FAIL — suspects {report.suspects} omit the dead home 0")
            save_artifact(args.out, "stall-check-report.json", report.to_json())
            return 1
        print(
            f"stall-check: ok — StallReport names region {call['region']} "
            f"at home {call['dst']} after {call['attempts']} attempts, "
            f"suspects {report.suspects}"
        )
        return 0
    print("stall-check: FAIL — dead link did not raise StallError")
    return 1


def parse_seeds(spec: str) -> list[int]:
    """``"0,2,5-7"`` → [0, 2, 5, 6, 7]."""
    seeds = []
    for part in spec.split(","):
        if "-" in part:
            lo, hi = part.split("-")
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps",
        type=lambda s: s.split(","),
        default=list(experiments.FIG7_WORKLOADS),
        help="comma-separated app subset (default: all five)",
    )
    parser.add_argument("--procs", type=int, default=4, help="simulated nodes (default 4)")
    parser.add_argument("--seeds", default="0,1", help="fault-plan seeds, e.g. 0,1 or 0-4")
    parser.add_argument(
        "--plan", choices=sorted(PLANS), default="canonical", help="fault plan family"
    )
    parser.add_argument(
        "--out", type=Path, default=Path("chaos-artifacts"), help="failure artifact directory"
    )
    parser.add_argument(
        "--no-stall-check", action="store_true", help="skip the dead-link StallReport check"
    )
    parser.add_argument(
        "--from-sweep", type=Path, default=None, metavar="SWEEP_JSON",
        help="re-verify the faulted cells of a tools/sweep.py artifact "
             "instead of running the built-in matrix",
    )
    parser.add_argument(
        "--crash", action="store_true",
        help="run the crash-stop recovery matrix (recover + abort over "
             "SC/Owned/DynamicUpdate) instead of the lossy-fabric matrix",
    )
    args = parser.parse_args(argv)

    if args.crash:
        failures = crash_matrix(args)
        if not args.no_stall_check:
            failures += stall_check(args)
        if failures:
            print(f"chaos: {failures} failure(s); artifacts in {args.out}/")
            return 1
        print(f"chaos: crash matrix passed; artifacts in {args.out}/")
        return 0

    if args.from_sweep is not None:
        failures = from_sweep(args)
        if failures:
            print(f"chaos: {failures} failure(s); artifacts in {args.out}/")
            return 1
        print("chaos: sweep artifact verified")
        return 0

    unknown = [a for a in args.apps if a not in experiments.FIG7_WORKLOADS]
    if unknown:
        parser.error(f"unknown apps {unknown}; choose from {list(experiments.FIG7_WORKLOADS)}")

    failures = chaos_matrix(args)
    if not args.no_stall_check:
        failures += stall_check(args)
    if failures:
        print(f"chaos: {failures} failure(s); artifacts in {args.out}/")
        return 1
    print("chaos: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
