#!/usr/bin/env python
"""Profile traced workload runs: cycle attribution, critical path, what-ifs.

For each requested (app, protocol-variant) pair this runs the bench
workload with observability on and prints

* the **cycle attribution table** — every node's timeline decomposed
  into compute / message wait / lock wait / barrier wait / directory
  service / retry / join / idle buckets.  The decomposition is exact:
  buckets sum to ``cycles × nodes`` (checked, and ``--check`` fails
  the process if it ever does not);
* the **critical path** — the longest weighted chain of causal edges
  (compute stretches, message wire hops, wakeups, barrier releases)
  with its per-category composition and the top-k heaviest segments,
  each annotated with the application phase it crossed;
* **what-if bounds** — the same path re-scanned with selected edge
  classes zeroed (free interconnect, free barriers, free locks): an
  upper bound on the speedup any optimization of that cost could buy;
* the **windowed metrics** digest (message mix, stall fraction) fed by
  a :class:`repro.obs.MetricsWindow` attached to the trace ring.

and writes one ``<out>/<app>-<variant>.profile.json`` artifact per run
for CI to archive and diff.

    PYTHONPATH=src python tools/profile.py                    # EM3D + TSP
    PYTHONPATH=src python tools/profile.py --apps Water --variants SC custom
    PYTHONPATH=src python tools/profile.py --apps all --check --out profiles
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ALL_APPS = ["Barnes-Hut", "BSC", "EM3D", "TSP", "Water"]
#: Attribution buckets in table order (idle last; zero columns elided).
COLUMNS = ["compute", "msg", "lock", "barrier", "dir", "retry", "join", "other", "idle"]


def variants_for(app: str, requested: list[str]) -> list[str]:
    """EM3D's protocol ladder names its steps dynamic/static, not custom."""
    if app == "EM3D":
        return [{"custom": "static"}.get(v, v) for v in requested]
    return [v for v in requested if v in ("SC", "custom")] or requested


def profile_one(app: str, variant: str, args):
    from repro.harness.experiments import trace_run
    from repro.obs import MetricsWindow, attribute, critical_path

    metrics = MetricsWindow(width=args.window)
    res, buf = trace_run(
        app, variant, backend=args.backend, n_procs=args.procs,
        capacity=args.capacity, metrics=metrics,
    )
    attr = attribute(buf, res.time, args.procs, strict=False)
    cp = critical_path(buf, res.time)
    return res, buf, metrics, attr, cp


def print_attribution(app, variant, res, attr) -> None:
    from repro.harness.experiments import format_table

    cols = [c for c in COLUMNS if attr.buckets.get(c)]
    rows = []
    for nid in sorted(attr.per_node):
        b = attr.per_node[nid]
        rows.append([f"node{nid}"] + [b.get(c, 0) for c in cols] + [sum(b.values())])
    total = sum(attr.buckets.values())
    rows.append(["TOTAL"] + [attr.buckets.get(c, 0) for c in cols] + [total])
    rows.append(["%"] + [f"{attr.buckets.get(c, 0) / total * 100:.1f}" for c in cols] + [""])
    status = "exact" if attr.exact else f"approx ({attr.dropped} events dropped)"
    print(format_table(
        f"{app} [{variant}] cycle attribution — {res.time} cycles x "
        f"{attr.n_nodes} nodes ({status})",
        ["node"] + cols + ["sum"],
        rows,
    ))


def print_critpath(cp, res, top_k: int) -> None:
    pct = cp.length / res.time * 100 if res.time else 0.0
    comp = ", ".join(
        f"{cat}:{cyc}" for cat, cyc in sorted(cp.by_category.items(), key=lambda kv: -kv[1]) if cyc
    )
    print(f"\n  critical path: {cp.length} cycles ({pct:.1f}% of makespan), "
          f"{cp.n_events} events, {cp.n_edges} edges, "
          f"{cp.orphaned_edges} orphaned")
    print(f"  composition:   {comp}")
    print(f"  top {top_k} segments:")
    for seg in cp.top_segments(top_k):
        print(f"    {seg['cycles']:8d} cyc  {seg['category']:<14s} "
              f"phase={seg['phase']:<12s} node={seg['node']:>2d} "
              f"[{seg['from_ts']}..{seg['to_ts']}]")
    print("  what-if bounds (upper bounds; dependencies not re-simulated):")
    for name, bound in cp.to_dict(top_k=0)["what_if"].items():
        sp = bound["speedup_bound"]
        print(f"    {name:<22s} makespan >= {bound['bound_cycles']:8d}  "
              f"speedup <= {sp if sp is not None else 'inf'}")


def check_run(app, variant, res, attr, cp, failures: list) -> None:
    """--check assertions; append human-readable failures."""
    tag = f"{app}/{variant}"
    if attr.exact and not attr.reconciles():
        failures.append(
            f"{tag}: attribution does not reconcile "
            f"({sum(attr.buckets.values())} != {attr.total})"
        )
    if cp.length > res.time:
        failures.append(
            f"{tag}: critical path {cp.length} exceeds makespan {res.time}"
        )
    if attr.exact and cp.orphaned_edges:
        failures.append(
            f"{tag}: {cp.orphaned_edges} orphaned edges with no ring evictions"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs="+", default=["EM3D", "TSP"],
                        help="bench apps, or 'all' (default: EM3D TSP)")
    parser.add_argument("--variants", nargs="+", default=["SC", "custom"],
                        help="protocol variants: SC, custom; EM3D maps custom->static "
                             "and also accepts dynamic")
    parser.add_argument("--backend", default="ace", choices=["ace", "crl"])
    parser.add_argument("--procs", type=int, default=4, help="simulated processors (default 4)")
    parser.add_argument("--capacity", type=int, default=1 << 20,
                        help="trace ring capacity in events (default 1M — attribution "
                             "is only exact if nothing is evicted)")
    parser.add_argument("--window", type=int, default=4096,
                        help="metrics window width in cycles (default 4096)")
    parser.add_argument("--top", type=int, default=8, metavar="K",
                        help="critical-path segments to print (default 8)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for <app>-<variant>.profile.json artifacts")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless attribution reconciles exactly and "
                             "the critical path is <= the makespan on every run")
    args = parser.parse_args(argv)

    apps = ALL_APPS if args.apps == ["all"] else args.apps
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)

    failures: list[str] = []
    for app in apps:
        for variant in dict.fromkeys(variants_for(app, args.variants)):
            res, buf, metrics, attr, cp = profile_one(app, variant, args)
            print_attribution(app, variant, res, attr)
            print_critpath(cp, res, args.top)
            ms = metrics.summary(res.time, args.procs)
            print(f"  metrics: {ms['windows']} windows x {ms['width']} cyc, "
                  f"{ms['msgs']} msgs, stall fraction {ms.get('stall_fraction', 0)}\n")
            if args.check:
                check_run(app, variant, res, attr, cp, failures)
            if args.out is not None:
                artifact = {
                    "app": app,
                    "variant": variant,
                    "backend": args.backend,
                    "procs": args.procs,
                    "cycles": res.time,
                    "events": len(buf),
                    "dropped": buf.dropped,
                    "attribution": attr.to_dict(),
                    "critical_path": cp.to_dict(top_k=args.top),
                    "metrics": ms,
                }
                path = args.out / f"{app.lower()}-{variant.lower()}.profile.json"
                path.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")
                print(f"wrote {path}", file=sys.stderr)

    if failures:
        print("CHECK FAILED:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    if args.check:
        print("all profiling checks passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    raise SystemExit(main())
