#!/usr/bin/env python
"""Parallel sweep driver: farm independent experiment cells across cores.

Every simulation in this repo is deterministic and single-threaded, so
an experiment matrix — protocol variant × app × node count × fault
plan — is embarrassingly parallel: each cell runs in its own worker
process and the merged report is byte-for-byte independent of worker
count and scheduling (``--compare-serial`` proves it on demand).

The merged JSON carries two views of the same run:

* ``cells`` — one record per cell with its simulated cycles, kernel
  events, wall clock, and fault/retry counters: what ``tools/chaos.py
  --from-sweep`` consumes to re-verify fault tolerance on exactly the
  swept matrix;
* ``suites.sweep`` — a ``tools/bench.py``-shaped block (``wall_s`` /
  ``events`` / ``events_per_s`` / ``rows``), so two sweep artifacts can
  be diffed with bench's ``compare()`` and its cycles-identical gate.

Cells that stall under an un-maskable fault plan are recorded (not
fatal): the offending :class:`~repro.dsm.FaultPlan` and stall report
are written next to the merged JSON so the cell can be reproduced from
artifacts alone.

Examples::

    PYTHONPATH=src python tools/sweep.py                         # default matrix
    PYTHONPATH=src python tools/sweep.py --smoke --jobs 2        # CI sanity run
    PYTHONPATH=src python tools/sweep.py --apps TSP,EM3D --seeds 0-2
    PYTHONPATH=src python tools/sweep.py --compare-serial        # determinism proof
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from multiprocessing import Pool
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.dsm import FaultPlan, StallError  # noqa: E402
from repro.facade import run_spmd  # noqa: E402
from repro.harness import experiments  # noqa: E402

PLANS = {
    "none": FaultPlan.none,
    "canonical": FaultPlan.canonical,
    "drop_retry": FaultPlan.drop_retry,
}

#: cell-record keys that identify a cell (the rest is measurement)
CELL_KEYS = ("app", "variant", "procs", "plan", "seed")


def default_pairs(apps: list[str]) -> list[tuple[str, str]]:
    """(app, variant) pairs: SC everywhere plus EM3D's update ladder."""
    pairs = [(app, "SC") for app in apps]
    if "EM3D" in apps:
        pairs += [("EM3D", "dynamic"), ("EM3D", "static")]
    return pairs


def build_matrix(
    apps: list[str], procs: list[int], plans: list[str], seeds: list[int]
) -> list[dict]:
    """The cross product, as plain dicts (picklable, JSON-able)."""
    cells = []
    for app, variant in default_pairs(apps):
        for n in procs:
            for plan in plans:
                for seed in seeds if plan != "none" else [0]:
                    cells.append(
                        dict(app=app, variant=variant, procs=n, plan=plan, seed=seed)
                    )
    return cells


def run_cell(cell: dict) -> dict:
    """Run one cell; returns the cell plus its measurements.

    Top-level (picklable) so a worker pool can map over it; a cell
    that stalls reports ``stalled`` with the plan and report JSON
    embedded rather than raising, so one bad cell can't sink a sweep.
    """
    program_fn, _, _ = experiments._PROGRAMS[cell["app"]]
    plan = experiments.plan_for(cell["app"], cell["variant"])
    wl = experiments.FIG7_WORKLOADS[cell["app"]]()
    fault_plan = PLANS[cell["plan"]](cell["seed"])
    kwargs = {} if cell["plan"] == "none" else {"fault_plan": fault_plan}
    t0 = time.perf_counter()
    try:
        res = run_spmd(
            program_fn(wl, plan), backend="ace", n_procs=cell["procs"], **kwargs
        )
    except StallError as err:
        return {
            **cell,
            "wall_s": round(time.perf_counter() - t0, 4),
            "stalled": True,
            "fault_plan": json.loads(fault_plan.to_json()),
            "stall_report": json.loads(err.report.to_json()),
        }
    return {
        **cell,
        "wall_s": round(time.perf_counter() - t0, 4),
        "stalled": False,
        "cycles": res.time,
        "events": getattr(res.machine.sim, "events", None),
        "faults": {
            "drop": res.stats.get("fault.drop"),
            "dup": res.stats.get("fault.dup"),
            "delay": res.stats.get("fault.delay"),
            "retries": res.stats.get("rel.retry"),
        },
    }


def sweep(cells: list[dict], jobs: int) -> tuple[list[dict], float]:
    """Run the matrix; returns (records in cell order, wall seconds)."""
    t0 = time.perf_counter()
    if jobs <= 1:
        records = [run_cell(c) for c in cells]
    else:
        with Pool(processes=min(jobs, len(cells))) as pool:
            records = pool.map(run_cell, cells)
    return records, time.perf_counter() - t0


def merge(records: list[dict], wall: float, jobs: int) -> dict:
    """Fold cell records into the merged artifact (see module doc)."""
    events = 0
    rows = []
    for r in records:
        if r["stalled"]:
            rows.append([r["app"], r["variant"], r["procs"], r["plan"], r["seed"], "STALL"])
            events = None if events is None else events
            continue
        rows.append([r["app"], r["variant"], r["procs"], r["plan"], r["seed"], r["cycles"]])
        if events is not None and r["events"] is not None:
            events += r["events"]
    return {
        "stamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        "jobs": jobs,
        "cells": records,
        "suites": {
            "sweep": {
                "wall_s": round(wall, 4),
                "events": events,
                "events_per_s": round(events / wall) if events and wall else None,
                "rows": rows,
            }
        },
    }


def write_failure_artifacts(records: list[dict], out_dir: Path) -> list[Path]:
    """Dump each stalled cell's plan + report for standalone repro."""
    paths = []
    for r in records:
        if not r["stalled"]:
            continue
        tag = "-".join(str(r[k]) for k in CELL_KEYS)
        out_dir.mkdir(parents=True, exist_ok=True)
        for suffix, payload in (
            ("plan", r["fault_plan"]),
            ("stall", r["stall_report"]),
        ):
            path = out_dir / f"{tag}-{suffix}.json"
            path.write_text(json.dumps(payload, indent=2) + "\n")
            paths.append(path)
    return paths


def compare_serial(cells: list[dict], records: list[dict]) -> list[str]:
    """Re-run every cell serially; report any cycles/events divergence.

    This is the determinism proof for the pool: worker processes must
    be invisible in the physics.  Returns human-readable mismatch
    lines (empty = identical).
    """
    mismatches = []
    for cell, par in zip(cells, records):
        ser = run_cell(cell)
        tag = "-".join(str(cell[k]) for k in CELL_KEYS)
        for field in ("stalled", "cycles", "events"):
            if ser.get(field) != par.get(field):
                mismatches.append(
                    f"{tag}: {field} parallel={par.get(field)} serial={ser.get(field)}"
                )
    return mismatches


def parse_seeds(spec: str) -> list[int]:
    """``"0,2,5-7"`` → [0, 2, 5, 6, 7]."""
    seeds = []
    for part in spec.split(","):
        if "-" in part:
            lo, hi = part.split("-")
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--apps",
        type=lambda s: s.split(","),
        default=list(experiments.FIG7_WORKLOADS),
        help="comma-separated app subset (default: all five)",
    )
    parser.add_argument(
        "--procs",
        type=lambda s: [int(x) for x in s.split(",")],
        default=[4],
        help="comma-separated simulated node counts (default: 4)",
    )
    parser.add_argument(
        "--plans",
        type=lambda s: s.split(","),
        default=["none", "canonical"],
        help=f"fault-plan families from {sorted(PLANS)} (default: none,canonical)",
    )
    parser.add_argument("--seeds", default="0", help="fault seeds, e.g. 0,1 or 0-4")
    parser.add_argument(
        "--jobs", type=int, default=os.cpu_count() or 1,
        help="worker processes (1 = serial; default: all cores)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI matrix: TSP+EM3D, SC only, 2 nodes, one faulted seed",
    )
    parser.add_argument(
        "--compare-serial", action="store_true",
        help="re-run every cell serially and fail on any cycle mismatch",
    )
    parser.add_argument("--out", type=Path, default=None,
                        help="merged JSON path (default SWEEP_<stamp>.json)")
    parser.add_argument(
        "--artifacts", type=Path, default=Path("sweep-artifacts"),
        help="directory for stalled-cell fault plans / reports",
    )
    args = parser.parse_args(argv)

    unknown = [a for a in args.apps if a not in experiments.FIG7_WORKLOADS]
    if unknown:
        parser.error(f"unknown apps {unknown}; choose from {list(experiments.FIG7_WORKLOADS)}")
    unknown = [p for p in args.plans if p not in PLANS]
    if unknown:
        parser.error(f"unknown plans {unknown}; choose from {sorted(PLANS)}")

    if args.smoke:
        cells = build_matrix(["TSP", "EM3D"], [2], ["none", "canonical"], [0])
        # smoke keeps only the SC pairs: small, but still one faulted
        # run per app so the retry machinery is exercised
        cells = [c for c in cells if c["variant"] == "SC"]
    else:
        cells = build_matrix(args.apps, args.procs, args.plans, parse_seeds(args.seeds))

    print(f"sweep: {len(cells)} cells on {args.jobs} worker(s)", file=sys.stderr)
    records, wall = sweep(cells, args.jobs)
    report = merge(records, wall, args.jobs)

    out = args.out or Path(f"SWEEP_{report['stamp'].replace(':', '')}.json")
    out.write_text(json.dumps(report, indent=2) + "\n")
    suite = report["suites"]["sweep"]
    print(f"wrote {out}")
    print(
        f"  sweep: {len(cells)} cells, {suite['wall_s']:.3f}s"
        + (f", {suite['events']} events, {suite['events_per_s']} events/s"
           if suite["events"] else "")
    )

    stalled = [r for r in records if r["stalled"]]
    if stalled:
        paths = write_failure_artifacts(records, args.artifacts)
        print(f"  {len(stalled)} cell(s) stalled; artifacts: {[str(p) for p in paths]}")

    if args.compare_serial:
        print("re-running serially for the determinism check ...", file=sys.stderr)
        mismatches = compare_serial(cells, records)
        if mismatches:
            for line in mismatches:
                print("  MISMATCH " + line)
            return 1
        print(f"  serial check: all {len(cells)} cells identical")
    return 1 if stalled else 0


if __name__ == "__main__":
    sys.exit(main())
