#!/usr/bin/env python
"""Sanitizer driver: lint AceC kernels and dynamically check the SPMD apps.

Three batteries, each with a hard expectation; any deviation is a
nonzero exit:

1. **Static lint** — every AceC kernel compiles with ``sanitize=True``
   at every optimization level: the annotation-discipline checker must
   certify both the lowered IR and the optimized IR with zero
   violations.
2. **Seeded static fixtures** — four deliberately misannotated programs
   (missing END, write under START_READ, double START, UNMAP leak).
   Each must *fail* compilation with a diagnostic naming the function,
   the source line, and the violated rule.
3. **Dynamic check** — the five Python-SPMD apps run under
   ``run_spmd(..., check=True)``.  BSC and EM3D are fully
   barrier-ordered and must come back clean.  Barnes-Hut, TSP, and
   Water intentionally perform intra-epoch shared read-modify-writes
   (job counters, incumbent bounds, force accumulation) that rely on
   per-access exclusivity rather than program-order synchronization —
   the strict happens-before model reports those, as the paper's LCM
   citation would, so for them the expectation is *races reported, on
   the known regions*.  A seeded two-node write-write race fixture must
   be detected, and every checked run must keep its simulated cycle
   count bit-identical to the unchecked run (the checker charges no
   cycles).

Usage::

    PYTHONPATH=src python tools/lint.py                 # everything
    PYTHONPATH=src python tools/lint.py --static-only
    PYTHONPATH=src python tools/lint.py --dynamic-only
    PYTHONPATH=src python tools/lint.py --out lint.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps import acec_sources as K  # noqa: E402
from repro.compiler.driver import (  # noqa: E402
    OPT_BASE,
    OPT_DIRECT,
    OPT_LI,
    OPT_LI_MC,
    compile_source,
)
from repro.compiler.errors import AnnotationError  # noqa: E402
from repro.facade.context import run_spmd  # noqa: E402

ALL_OPTS = (OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT)

KERNELS = {
    "em3d": lambda: K.em3d_source(K.EM3DKernelWL()),
    "bsc": lambda: K.bsc_source(K.BSCKernelWL()),
    "water": lambda: K.water_source(K.WaterKernelWL()),
    "bh": lambda: K.bh_source(K.BHKernelWL()),
    "tsp": lambda: K.tsp_source(K.TSPKernelWL()),
}

_PRELUDE = """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    p = ace_gmalloc(s, 4);
    mapped double *m;
    m = ace_map(p);
"""

#: name -> (source, rule the diagnostic must carry)
SEEDED_FIXTURES = {
    "missing_end": (
        _PRELUDE + "    ace_start_write(m);\n    m[0] = 1;\n}\n",
        "open-access-at-exit",
    ),
    "write_under_read": (
        _PRELUDE + "    ace_start_read(m);\n    m[0] = 1;\n    ace_end_read(m);\n}\n",
        "write-under-read",
    ),
    "double_start": (
        _PRELUDE
        + "    ace_start_read(m);\n    ace_start_read(m);\n"
        + "    ace_end_read(m);\n    ace_end_read(m);\n}\n",
        "double-start",
    ),
    "unmap_leak": (
        """
void main() {
    int s = ace_new_space("SC");
    shared double *p;
    shared double *q;
    p = ace_gmalloc(s, 4);
    q = ace_gmalloc(s, 4);
    mapped double *a;
    mapped double *b;
    a = ace_map(p);
    b = ace_map(q);
    ace_start_write(a);
    a[0] = 1;
    ace_end_write(a);
    ace_start_write(b);
    b[0] = 2;
    ace_end_write(b);
    ace_unmap(a);
}
""",
        "map-leak",
    ),
}

#: apps whose intra-epoch shared updates the checker is expected to report
EXPECT_CLEAN = {"BSC", "EM3D"}


def lint_static() -> tuple[list[dict], int]:
    rows, failures = [], 0
    for kernel, source_f in sorted(KERNELS.items()):
        source = source_f()
        for opt in ALL_OPTS:
            row = {"kernel": kernel, "opt": opt.name, "ok": True, "error": None}
            try:
                compile_source(source, opt=opt, sanitize=True)
            except AnnotationError as exc:
                row["ok"] = False
                row["error"] = str(exc)
                failures += 1
            rows.append(row)
            status = "clean" if row["ok"] else "VIOLATIONS"
            print(f"  static {kernel:6s} @ {opt.name:8s} {status}")
            if row["error"]:
                print("    " + row["error"].replace("\n", "\n    "))
    return rows, failures


def lint_fixtures() -> tuple[list[dict], int]:
    rows, failures = [], 0
    for name, (source, rule) in sorted(SEEDED_FIXTURES.items()):
        row = {"fixture": name, "rule": rule, "ok": False, "diagnostic": None}
        try:
            compile_source(source, sanitize=True)
            print(f"  fixture {name}: NOT FLAGGED (sanitizer miss)")
            failures += 1
        except AnnotationError as exc:
            msg = str(exc)
            row["diagnostic"] = msg
            # precise: names the rule, the function, and a source line
            row["ok"] = f"[{rule}]" in msg and "main:" in msg
            if row["ok"]:
                first = msg.splitlines()[1].strip()
                print(f"  fixture {name}: flagged -> {first}")
            else:
                print(f"  fixture {name}: flagged but imprecise: {msg}")
                failures += 1
        rows.append(row)
    return rows, failures


def _seeded_race_program(state):
    def program(ctx):
        sid = yield from ctx.new_space("SC")
        if ctx.nid == 0:
            state["rid"] = yield from ctx.gmalloc(sid, 4)
        yield from ctx.barrier(sid)
        h = yield from ctx.map(state["rid"])
        yield from ctx.start_write(h)
        h.data[:] = ctx.nid
        yield from ctx.end_write(h)
        yield from ctx.barrier(sid)
        yield from ctx.unmap(h)

    return program


def lint_dynamic(n_procs: int) -> tuple[list[dict], int]:
    import repro.harness.experiments as E

    rows, failures = [], 0
    for app, (prog_f, base_plan, _custom) in sorted(E._PROGRAMS.items()):
        workload = E.FIG7_WORKLOADS[app]()
        program = prog_f(workload, base_plan)
        base = run_spmd(program, n_procs=n_procs)
        checked = run_spmd(program, n_procs=n_procs, check=True)
        ck = checked.checker
        expect_clean = app in EXPECT_CLEAN
        ok = (checked.time == base.time) and (ck.clean == expect_clean)
        row = {
            "app": app,
            "expect": "clean" if expect_clean else "races-reported",
            "clean": ck.clean,
            "races": len(ck.races),
            "violations": len(ck.violations),
            "accesses": ck.accesses_checked,
            "cycles_identical": checked.time == base.time,
            "ok": ok,
            "report": [str(r) for r in ck.report()],
        }
        rows.append(row)
        if not ok:
            failures += 1
        print(
            f"  dynamic {app:10s} expect={row['expect']:15s} "
            f"races={row['races']:2d} cycles_ok={row['cycles_identical']} "
            f"-> {'ok' if ok else 'FAIL'}"
        )

    # the seeded race must be caught, at identical cycle count
    base = run_spmd(_seeded_race_program({}), n_procs=2)
    checked = run_spmd(_seeded_race_program({}), n_procs=2, check=True)
    ck = checked.checker
    caught = any(r.kind == "ww" for r in ck.races)
    ok = caught and checked.time == base.time
    rows.append(
        {
            "app": "seeded-ww-race",
            "expect": "races-reported",
            "clean": ck.clean,
            "races": len(ck.races),
            "violations": len(ck.violations),
            "accesses": ck.accesses_checked,
            "cycles_identical": checked.time == base.time,
            "ok": ok,
            "report": [str(r) for r in ck.report()],
        }
    )
    if not ok:
        failures += 1
    print(f"  dynamic seeded-ww-race caught={caught} -> {'ok' if ok else 'FAIL'}")
    return rows, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--static-only", action="store_true")
    parser.add_argument("--dynamic-only", action="store_true")
    parser.add_argument("--n-procs", type=int, default=4)
    parser.add_argument("--out", default=None, help="write a JSON report here")
    args = parser.parse_args(argv)

    report: dict = {}
    failures = 0
    if not args.dynamic_only:
        print("static lint: kernels x optimization levels")
        report["static"], f = lint_static()
        failures += f
        print("static lint: seeded misannotation fixtures")
        report["fixtures"], f = lint_fixtures()
        failures += f
    if not args.static_only:
        print(f"dynamic check: SPMD apps on {args.n_procs} nodes")
        report["dynamic"], f = lint_dynamic(args.n_procs)
        failures += f

    report["failures"] = failures
    if args.out:
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {args.out}")
    print("lint:", "PASS" if failures == 0 else f"FAIL ({failures} problem(s))")
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
