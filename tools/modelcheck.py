#!/usr/bin/env python
"""Small-scope model checker driver for table-driven protocols.

Exhaustively enumerates every message interleaving of a protocol's
:class:`~repro.spec.table.ProtocolTable` at a bounded scope (the
Teapot role the paper's §6 points at) and reports per-invariant
verdicts with minimal counterexample traces.

Modes:

* default — check the named protocols (or every table-driven protocol
  in the registry) at the given scope; nonzero exit on any violation.
* ``--seeded`` — ALSO run every seeded mutation of each table and
  require the checker to *refute* each one, printing its minimal
  counterexample.  A mutation the checker misses is a nonzero exit:
  this is the checker's own regression test.
* ``--write-certs`` — record each clean result as a JSON certificate
  under ``src/repro/verify/certs/<name>.json``, keyed by the table's
  content fingerprint (editing any row invalidates the certificate).
* ``--check`` — verify committed certificates still match the tables
  as they exist today (fingerprint + ok); nonzero exit on drift.
  This is the CI mode: cheap, no state enumeration for unchanged
  tables unless ``--recheck`` forces one.

Usage::

    PYTHONPATH=src python tools/modelcheck.py                      # all tables
    PYTHONPATH=src python tools/modelcheck.py SC SelfInvalidate
    PYTHONPATH=src python tools/modelcheck.py SC --nodes 3 --ops 2
    PYTHONPATH=src python tools/modelcheck.py --seeded
    PYTHONPATH=src python tools/modelcheck.py --write-certs
    PYTHONPATH=src python tools/modelcheck.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro.protocols  # noqa: E402,F401  (registration side effects)
from repro.protocols.registry import default_registry  # noqa: E402
from repro.verify.modelcheck import (  # noqa: E402
    Scope,
    check_table,
    model_for,
    seeded_mutations,
)

CERT_DIR = Path(__file__).resolve().parent.parent / "src" / "repro" / "verify" / "certs"


def _checkable(names: list[str]) -> list[str]:
    """Protocols that both ship a table and map onto a checker model."""
    out = []
    for name in names:
        table = default_registry.table_of(name)
        if table is None:
            continue
        try:
            model_for(table, Scope())
        except Exception:
            continue
        out.append(name)
    return out


def _run_one(name, scope, max_states, verbose) -> bool:
    table = default_registry.table_of(name)
    result = check_table(table, scope, max_states=max_states)
    status = "ok" if result.ok else "VIOLATED"
    print(
        f"{name:16s} {result.family:12s} "
        f"scope={scope.nodes}x{scope.regions}x{scope.ops} "
        f"states={result.states:>7} transitions={result.transitions:>8}  {status}"
    )
    if verbose or not result.ok:
        for v in result.violations:
            print(_indent(v.render()))
    return result.ok


def _run_seeded(name, scope, max_states) -> bool:
    table = default_registry.table_of(name)
    mutations = seeded_mutations(table)
    if not mutations:
        print(f"{name:16s} (no seeded mutations for this family)")
        return True
    all_caught = True
    for label, broken in mutations:
        result = check_table(broken, scope, max_states=max_states)
        caught = not result.ok
        all_caught &= caught
        verdict = "caught" if caught else "MISSED"
        print(f"{name:16s} mutation {label!r}: {verdict}")
        if caught:
            print(_indent(result.violations[0].render()))
        else:
            print(_indent("the checker certified a known-broken table — it has no teeth"))
    return all_caught


def _write_cert(name, scope, max_states) -> bool:
    table = default_registry.table_of(name)
    result = check_table(table, scope, max_states=max_states)
    if not result.ok:
        print(f"{name}: refusing to certify a violated table")
        for v in result.violations:
            print(_indent(v.render()))
        return False
    CERT_DIR.mkdir(parents=True, exist_ok=True)
    path = CERT_DIR / f"{name}.json"
    path.write_text(json.dumps(result.certificate(), indent=2, sort_keys=True) + "\n")
    print(f"{name:16s} certificate written: {path.relative_to(Path.cwd())}")
    return True


def _check_cert(name, recheck, scope, max_states) -> bool:
    table = default_registry.table_of(name)
    path = CERT_DIR / f"{name}.json"
    if not path.exists():
        print(f"{name:16s} NO CERTIFICATE ({path}); run --write-certs")
        return False
    cert = json.loads(path.read_text())
    if cert.get("table_fingerprint") != table.fingerprint():
        print(
            f"{name:16s} STALE certificate: table fingerprint "
            f"{table.fingerprint()} != certified {cert.get('table_fingerprint')}"
        )
        return False
    if not cert.get("ok"):
        print(f"{name:16s} certificate records violations; that is not a certificate")
        return False
    if recheck:
        cs = cert["scope"]
        result = check_table(
            table,
            Scope(cs["nodes"], cs["regions"], cs["ops"], cs["epochs"]),
            max_states=max_states,
        )
        if not result.ok:
            print(f"{name:16s} RECHECK FAILED")
            for v in result.violations:
                print(_indent(v.render()))
            return False
        print(f"{name:16s} certificate valid (rechecked: {result.states} states)")
    else:
        print(f"{name:16s} certificate valid (fingerprint {cert['table_fingerprint']})")
    return True


def _indent(text: str) -> str:
    return "\n".join("    " + line for line in text.splitlines())


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("protocols", nargs="*", help="protocol names (default: every table-driven one)")
    ap.add_argument("--nodes", type=int, default=2)
    ap.add_argument("--regions", type=int, default=1)
    ap.add_argument("--ops", type=int, default=2)
    ap.add_argument("--epochs", type=int, default=2)
    ap.add_argument("--max-states", type=int, default=400_000)
    ap.add_argument("--seeded", action="store_true", help="also refute every seeded mutation")
    ap.add_argument("--write-certs", action="store_true", help="record clean results as certificates")
    ap.add_argument("--check", action="store_true", help="verify committed certificates (CI mode)")
    ap.add_argument("--recheck", action="store_true", help="with --check: re-enumerate, not just fingerprints")
    ap.add_argument("-v", "--verbose", action="store_true")
    args = ap.parse_args(argv)

    scope = Scope(args.nodes, args.regions, args.ops, args.epochs)
    names = args.protocols or _checkable(default_registry.names())
    for name in names:
        if default_registry.table_of(name) is None:
            ap.error(f"protocol {name!r} has no declarative table")

    ok = True
    for name in names:
        if args.check:
            ok &= _check_cert(name, args.recheck, scope, args.max_states)
            continue
        ok &= _run_one(name, scope, args.max_states, args.verbose)
        if args.seeded:
            ok &= _run_seeded(name, scope, args.max_states)
        if args.write_certs:
            ok &= _write_cert(name, scope, args.max_states)
    print("model check:", "ok" if ok else "FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
