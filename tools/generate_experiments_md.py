"""Regenerate EXPERIMENTS.md from live harness runs.

    python tools/generate_experiments_md.py

Cycle tables come from fresh in-process runs (deterministic, host-
independent); the table4 *throughput* block additionally reads the
committed ``BENCH_*.json`` artifacts, so the before/after wall-clock
story for the closure-codegen backend travels with the repo.
"""

import glob
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness import (  # noqa: E402
    BENCH_PROCS,
    by_app,
    fig7a_rows,
    fig7b_rows,
    sec33_ladder_rows,
    table3_rows,
)
from repro.harness.experiments import table4_rows  # noqa: E402
from repro.serve import ServeWorkload, run_serve  # noqa: E402

SERVE_PROTOCOLS = ("SC", "DynamicUpdate", "Migratory")

PAPER_TABLE4 = {
    # paper Table 4, seconds
    "Barnes-Hut": {"base": 6.12, "LI": 6.03, "LI+MC": 4.75, "LI+MC+DC": 4.60, "hand": 3.74},
    "BSC": {"base": 20.39, "LI": 5.60, "LI+MC": 4.61, "LI+MC+DC": 4.50, "hand": 4.18},
    "EM3D": {"base": 0.29, "LI": 0.26, "LI+MC": 0.25, "LI+MC+DC": 0.17, "hand": 0.13},
    "TSP": {"base": 1.34, "LI": 1.16, "LI+MC": 1.05, "LI+MC+DC": 1.05, "hand": 0.80},
    "Water": {"base": 1.78, "LI": 1.76, "LI+MC": 0.73, "LI+MC+DC": 0.71, "hand": 0.63},
}

LEVELS = ["base", "LI", "LI+MC", "LI+MC+DC", "hand"]

#: the stamped artifact recorded just before the closure-codegen
#: backend landed: the tree-walking interpreter's throughput
INTERP_BASELINE = "BENCH_2026-08-05T224018Z.json"


def table4_throughput():
    """(before, after) table4 suite blocks from committed BENCH files.

    *Before* is the interpreter-era artifact pinned above; *after* is
    the newest stamped artifact in the repo root.  Returns (None, None)
    when either is missing so EXPERIMENTS.md can still regenerate from
    a partial checkout.
    """
    root = os.path.join(os.path.dirname(__file__), "..")

    def suite(path):
        try:
            with open(path) as fh:
                return json.load(fh)["suites"].get("table4")
        except (OSError, ValueError, KeyError):
            return None

    before = suite(os.path.join(root, INTERP_BASELINE))
    stamped = sorted(
        p for p in glob.glob(os.path.join(root, "BENCH_*.json"))
        if "seed" not in os.path.basename(p)
    )
    after = suite(stamped[-1]) if stamped else None
    if after is before:  # same file: nothing to compare
        return None, None
    return before, after


def serve_mix_rows():
    """Static-protocol cycles across read/write mixes (small scale).

    The crossover this table shows — update protocols win read-heavy,
    migration wins write-heavy — is what gives the adaptive controller
    something to exploit.
    """
    rows = []
    for rf in (0.95, 0.5, 0.1):
        wl = ServeWorkload(
            n_keys=32, n_shards=2, n_requests=512, batch=32, rate=50.0,
            read_frac=rf, shift_read_frac=None, think_cycles=10, seed=11,
        )
        cells = []
        for name in SERVE_PROTOCOLS:
            _, rep = run_serve(wl, protocol=name, n_procs=3)
            cells.append(rep["cycles"])
        best = SERVE_PROTOCOLS[cells.index(min(cells))]
        rows.append((f"{rf:.2f}", *cells, best))
    return rows


def serve_headline():
    """The committed adaptive-vs-static artifact (tools/serve.py --compare)."""
    path = os.path.join(os.path.dirname(__file__), "..", "SERVE_seed.json")
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def md_table(header, rows):
    out = ["| " + " | ".join(header) + " |", "|" + "|".join("---" for _ in header) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def main():
    lines = []
    w = lines.append
    w("# EXPERIMENTS — paper vs. measured")
    w("")
    w("Every entry below was produced by the committed harness "
      "(`benchmarks/`, `repro.harness`); regenerate this file with "
      "`python tools/generate_experiments_md.py`. The substrate is a "
      "simulated multicomputer, so *measured* values are simulated cycles "
      "at bench scale, and the reproduction target is the paper's shape "
      "— ordering, rough factors, crossovers — not absolute CM-5 seconds "
      "(see DESIGN.md §2).")
    w("")

    # -------------------------------------------------- table 3
    w("## Table 3 — benchmark inputs")
    w("")
    w(md_table(["benchmark", "paper input", "bench-scale input (this repo)"], table3_rows()))
    w("")
    w("Paper-scale inputs remain available on every workload class via "
      "`.paper()`; the bench scale keeps each experiment at seconds of "
      "wall clock in the pure-Python simulator.")
    w("")

    # -------------------------------------------------- figure 7a
    d = by_app(fig7a_rows())
    w(f"## Figure 7a — Ace runtime vs CRL (SC protocol, {BENCH_PROCS} simulated procs)")
    w("")
    rows = [
        (app, v["crl"], v["ace"], f"{v['crl'] / v['ace']:.2f}x")
        for app, v in sorted(d.items())
    ]
    w(md_table(["app", "CRL (cycles)", "Ace (cycles)", "CRL/Ace"], rows))
    w("")
    w("**Paper:** Ace at least matches CRL on every benchmark; the gap is "
      "largest for fine-grained Barnes-Hut and EM3D (mapping-path and SC-"
      "protocol engineering), and disappears for coarse-grained BSC, where "
      "the space-dispatch indirection cancels the runtime gains.  "
      "**Measured:** same ordering — Barnes-Hut "
      f"{d['Barnes-Hut']['crl'] / d['Barnes-Hut']['ace']:.2f}x and EM3D "
      f"{d['EM3D']['crl'] / d['EM3D']['ace']:.2f}x lead, BSC "
      f"{d['BSC']['crl'] / d['BSC']['ace']:.2f}x is near parity.")
    w("")

    # -------------------------------------------------- figure 7b
    d = by_app(fig7b_rows())
    w(f"## Figure 7b — SC vs application-specific protocols ({BENCH_PROCS} procs)")
    w("")
    paper_speedup = {
        "Barnes-Hut": "~2x (dynamic update)",
        "BSC": "1.02x (marginal; bulk transfer already default)",
        "EM3D": "~5x (static update)",
        "TSP": "~1.3x (counter management)",
        "Water": "~2x (pipelined writes + null phase)",
    }
    rows = [
        (app, v["SC"], v["custom"], f"{v['SC'] / v['custom']:.2f}x", paper_speedup[app])
        for app, v in sorted(d.items())
    ]
    w(md_table(["app", "SC (cycles)", "custom (cycles)", "measured speedup", "paper"], rows))
    speedups = [v["SC"] / v["custom"] for v in d.values()]
    w("")
    w(f"**Paper:** speedups 1.02x–5x, average ≈ 2.  **Measured:** "
      f"{min(speedups):.2f}x–{max(speedups):.2f}x, average "
      f"{sum(speedups) / len(speedups):.2f} — same winner (EM3D static "
      "update), same loser (BSC, marginal), Water at ≈2x from phase "
      "switching, exactly the paper's narrative.")
    w("")

    # -------------------------------------------------- §3.3
    v = by_app(sec33_ladder_rows())["EM3D"]
    w("## §3.3 (in text) — EM3D protocol ladder")
    w("")
    rows = [
        ("SC invalidate", v["SC"], "1.0x", "1.0x"),
        ("DynamicUpdate", v["DynamicUpdate"], f"{v['SC'] / v['DynamicUpdate']:.2f}x", "3.5x"),
        ("StaticUpdate", v["StaticUpdate"], f"{v['SC'] / v['StaticUpdate']:.2f}x", "~5x"),
    ]
    w(md_table(["protocol", "cycles", "measured speedup", "paper speedup"], rows))
    w("")
    w("Ordering reproduced (SC < dynamic < static). The measured factors "
      "are compressed relative to the paper's because the bench-scale "
      "graph has fewer remote edges per barrier than the CM-5 runs; the "
      "crossover structure is identical.")
    w("")

    # -------------------------------------------------- table 4
    d = by_app(table4_rows())
    w("## Table 4 — effects of compiler optimizations")
    w("")
    w("Measured (simulated cycles, AceC kernels at bench scale):")
    w("")
    apps = sorted(d)
    rows = [(lvl, *[d[a][lvl] for a in apps]) for lvl in LEVELS]
    w(md_table(["optimization", *apps], rows))
    w("")
    w("Paper (seconds on the CM-5):")
    w("")
    rows = [(lvl, *[PAPER_TABLE4[a][lvl] for a in apps]) for lvl in LEVELS]
    w(md_table(["optimization", *apps], rows))
    w("")
    ratios = {a: d[a]["LI+MC+DC"] / d[a]["hand"] for a in apps}
    paper_ratios = {a: PAPER_TABLE4[a]["LI+MC+DC"] / PAPER_TABLE4[a]["hand"] for a in apps}
    rows = [
        (a, f"{d[a]['base'] / d[a]['LI+MC+DC']:.2f}x",
         f"{PAPER_TABLE4[a]['base'] / PAPER_TABLE4[a]['LI+MC+DC']:.2f}x",
         f"{ratios[a]:.2f}x", f"{paper_ratios[a]:.2f}x")
        for a in apps
    ]
    w(md_table(
        ["app", "base/best (measured)", "base/best (paper)",
         "best/hand (measured)", "best/hand (paper)"], rows))
    w("")
    w("**Paper signatures reproduced:** the ladder is monotone for every "
      "benchmark; BSC's dominant gain comes from loop invariance "
      f"(measured {d['BSC']['base'] / d['BSC']['LI']:.2f}x from LI alone, "
      "paper 3.6x); Water's comes from merging calls (measured "
      f"{d['Water']['LI'] / d['Water']['LI+MC']:.2f}x, paper 2.4x); EM3D "
      "gets its extra push from direct dispatch deleting the static-update "
      f"protocol's null read handlers (measured "
      f"{d['EM3D']['LI+MC'] / d['EM3D']['LI+MC+DC']:.2f}x, paper 1.5x); and "
      "the best compiled code is within the paper's 1.1–1.3x of hand-"
      "optimized runtime code (measured "
      f"{min(ratios.values()):.2f}–{max(ratios.values()):.2f}x; TSP sits at "
      "parity because branch-and-bound expansion counts shift with incumbent "
      "timing).")
    w("")
    before, after = table4_throughput()
    if before and after and before.get("events_per_s") and after.get("events_per_s"):
        w("### table4 harness throughput (closure codegen, DESIGN.md §12)")
        w("")
        w("Simulated cycles above are backend-invariant; what the closure "
          "backend changes is how fast the harness produces them "
          "(kernel events/s over the whole 25-run suite, committed "
          "`BENCH_*.json` artifacts, same host class):")
        w("")
        speedup = after["events_per_s"] / before["events_per_s"]
        w(md_table(
            ["backend", "wall (s)", "kernel events", "events/s", "vs interp"],
            [
                ("tree-walking interpreter (before)", before["wall_s"],
                 before["events"], before["events_per_s"], "1.00x"),
                ("pre-bound closures (after)", after["wall_s"],
                 after["events"], after["events_per_s"], f"{speedup:.2f}x"),
            ],
        ))
        w("")

    # -------------------------------------------------- serving
    w("## Serving: adaptive online protocol switching (DESIGN.md §16)")
    w("")
    w("Not a paper figure — the serving-scale extrapolation of the "
      "paper's thesis: per-space protocol choice plus "
      "`Ace_ChangeProtocol` lets a sharded KV service revisit each "
      "shard's protocol *while serving*.  First the static regimes "
      "(zipfian stream, fixed read fraction, cycles to drain 512 "
      "requests on 3 nodes):")
    w("")
    w(md_table(["read fraction", *[f"{p} (cycles)" for p in SERVE_PROTOCOLS], "best"],
               serve_mix_rows()))
    w("")
    w("No single protocol wins every mix — update fan-out pays off only "
      "while somebody reads it; migration is mix-insensitive.  The "
      "adaptive headline (committed `SERVE_seed.json`, regenerated by "
      "`tools/serve.py --compare --out SERVE_seed.json`; CI re-runs the "
      "comparison and fails if adaptive stops winning):")
    w("")
    head = serve_headline()
    if head is not None:
        rows = [
            (e["config"], e["cycles"], e["msgs"], e["latency"]["p99"],
             e.get("switches", 0) if e["config"] == "adaptive" else "-")
            for e in head["entries"]
        ]
        w(md_table(["config", "cycles", "msgs", "p99 latency", "switches"], rows))
        w("")
        adv = head["adaptive_advantage"] * 100
        wl = head["workload"]
        w(f"Workload: {wl['n_requests']} requests over {wl['n_keys']} keys in "
          f"{wl['n_shards']} shards, read fraction {wl['read_frac']} shifting to "
          f"{wl['shift_read_frac']} at {wl['shift_at']:.0%} of the stream, "
          f"zipf s={wl['zipf_s']}, seed {wl['seed']}.  The controller starts "
          "every shard on DynamicUpdate, sees the write fraction cross its "
          "threshold within one epoch of the shift, and moves each shard to "
          f"Migratory online — beating the best static configuration by "
          f"{adv:.1f}% simulated cycles with fewer messages, despite paying "
          "for the switch collectives itself.")
    else:
        w("(SERVE_seed.json not present in this checkout.)")
    w("")

    # -------------------------------------------------- ablations
    w("## Ablations (design choices from DESIGN.md §5)")
    w("")
    w("Run via `pytest benchmarks/ --benchmark-only`:")
    w("")
    w("* `test_ablation_dispatch_cost` — zeroing the space-dispatch charge "
      "speeds fine-grained EM3D far more than coarse-grained BSC, "
      "quantifying §5.1's explanation of Figure 7a's BSC parity.")
    w("* `test_ablation_granularity` — packing independently-written "
      "counters into fixed-size coherence units (vs one region each) "
      "induces the §2.3 'false sharing of protocols' ownership ping-pong "
      "(>2x slowdown measured).")
    w("* `test_ablation_barrier` — replacing the CM-5 control-network "
      "barrier with a message-based dissemination barrier costs EM3D/"
      "StaticUpdate a measurable but bounded amount (<2x).")
    w("* `test_ablation_hw_assist` — §6's Typhoon/FLASH integration: the "
      "`HwSC` protocol keeps the SC state machine but does hit-path checks "
      "in hardware and bypasses software dispatch; EM3D speeds up, the "
      "miss path (messages) is untouched.")
    w("")
    path = os.path.join(os.path.dirname(__file__), "..", "EXPERIMENTS.md")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {os.path.abspath(path)}")


if __name__ == "__main__":
    main()
