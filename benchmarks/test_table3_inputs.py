"""Table 3: benchmark inputs — the paper's canonical parameters next to
this reproduction's bench-scale configurations (see DESIGN.md for the
scaling substitution)."""

from repro.apps import barnes_hut, bsc, em3d, tsp, water
from repro.harness import format_table, table3_rows


def test_table3_benchmark_inputs(benchmark):
    rows = benchmark.pedantic(table3_rows, rounds=1, iterations=1)
    print()
    print(format_table("Table 3 — benchmark inputs", ["name", "paper input", "bench scale"], rows))
    benchmark.extra_info["rows"] = rows

    # the paper's canonical inputs stay available on every workload class
    assert barnes_hut.BHWorkload.paper().n_bodies == 16384
    assert em3d.EM3DWorkload.paper().n_e == 1000
    assert em3d.EM3DWorkload.paper().n_iters == 100
    assert tsp.TSPWorkload.paper().n_cities == 12
    assert water.WaterWorkload.paper().n_molecules == 512
    assert water.WaterWorkload.paper().n_steps == 3
    assert bsc.BSCWorkload.paper().n >= 100
    assert len(rows) == 5
