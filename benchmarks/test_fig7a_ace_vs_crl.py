"""Figure 7a: Ace runtime system versus CRL (both running SC invalidation).

Paper shape: Ace is never slower than CRL; the gap is largest for the
fine-grained applications (Barnes-Hut, EM3D — many small regions, many
map/start/end calls) and smallest for coarse-grained BSC, where the
dispatch indirection cancels the runtime-system optimizations (§5.1).
"""

from repro.harness import BENCH_PROCS, by_app, fig7a_rows, format_table


def test_fig7a_ace_vs_crl(benchmark):
    rows = benchmark.pedantic(fig7a_rows, rounds=1, iterations=1)
    d = by_app(rows)
    table = [
        (app, v["crl"], v["ace"], f"{v['crl'] / v['ace']:.2f}x") for app, v in sorted(d.items())
    ]
    print()
    print(
        format_table(
            f"Figure 7a — Ace vs CRL, SC protocol, {BENCH_PROCS} simulated procs (cycles)",
            ["app", "CRL", "Ace", "CRL/Ace"],
            table,
        )
    )
    benchmark.extra_info["rows"] = [tuple(r) for r in rows]

    ratios = {app: v["crl"] / v["ace"] for app, v in d.items()}
    # Ace never loses
    for app, ratio in ratios.items():
        assert ratio >= 0.99, f"{app}: Ace slower than CRL ({ratio:.2f})"
    # fine-grained apps benefit most
    assert ratios["Barnes-Hut"] > ratios["BSC"]
    assert ratios["EM3D"] > ratios["BSC"]
    # coarse-grained BSC ~ parity (indirection cancels the gains)
    assert ratios["BSC"] < 1.15
