"""Ablation: barrier algorithm — CM-5 control network vs dissemination.

CRL (and our default) rides the CM-5's hardware control network; the
dissemination barrier is the portable fallback for machines without
one.  A barrier-heavy workload (EM3D, two barriers per iteration)
quantifies the cost of losing the control network.
"""

from repro.apps import em3d
from repro.facade import run_spmd
from repro.harness import format_table
from repro.harness.experiments import FIG7_WORKLOADS


def _experiment():
    wl = FIG7_WORKLOADS["EM3D"]()
    program = em3d.em3d_program(wl, em3d.STATIC_PLAN)
    t_hw = run_spmd(program, backend="ace", n_procs=8, barrier_algorithm="hw").time
    program = em3d.em3d_program(wl, em3d.STATIC_PLAN)
    t_diss = run_spmd(
        program, backend="ace", n_procs=8, barrier_algorithm="dissemination"
    ).time
    return t_hw, t_diss


def test_barrier_algorithm(benchmark):
    t_hw, t_diss = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Ablation — barrier algorithm on EM3D/StaticUpdate (cycles)",
            ["barrier", "cycles"],
            [("hw (control network)", t_hw), ("dissemination (messages)", t_diss)],
        )
    )
    benchmark.extra_info["hw"] = t_hw
    benchmark.extra_info["dissemination"] = t_diss
    # losing the control network costs something, but the protocol still works
    assert t_diss > t_hw
    assert t_diss < 2.0 * t_hw
