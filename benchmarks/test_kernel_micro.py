"""Kernel micro-benchmarks (pytest-benchmark; not part of tier-1).

Isolates the primitives the fast path optimizes — task spawn/resume
throughput, delay-0 scheduling through the same-cycle ring vs the heap
(jitter disables the ring), future resolution wake-ups — so a kernel
regression shows up here before it shows up as minutes in the paper
experiments.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernel_micro.py
"""

from repro.sim import Delay, Future, Simulator

N_TASKS = 200
N_STEPS = 50


def _run_delays(step: int, jitter_seed=None) -> int:
    sim = Simulator(jitter_seed=jitter_seed)

    def task():
        for _ in range(N_STEPS):
            yield Delay(step)

    for i in range(N_TASKS):
        sim.spawn(task(), name=f"t{i}")
    sim.run()
    return sim.events


def test_spawn_resume_throughput(benchmark):
    """Nonzero delays: every resume goes through the heap."""
    events = benchmark(_run_delays, 3)
    assert events == N_TASKS * (N_STEPS + 1)


def test_delay0_ring(benchmark):
    """Delay-0 storm on the canonical schedule: ring + trampoline path."""
    events = benchmark(_run_delays, 0)
    assert events == N_TASKS * (N_STEPS + 1)


def test_delay0_heap_under_jitter(benchmark):
    """Same storm with schedule fuzzing: ring/trampoline disabled, so
    this is the old all-heap cost — the gap to test_delay0_ring is the
    fast path's win."""
    events = benchmark(_run_delays, 0, jitter_seed=1)
    assert events == N_TASKS * (N_STEPS + 1)


def test_future_wakeup_chain(benchmark):
    """Ping-pong through futures: resolution + pre-bound wake thunks."""

    def run() -> int:
        sim = Simulator()
        rounds = 500

        # Resolve-before-wait exercises the resolved-future resume path;
        # pairing tasks through fresh futures exercises add_callback.
        def solo():
            for _ in range(rounds):
                fut = Future()
                fut.resolve(42)
                got = yield fut
                assert got == 42
                yield Delay(1)

        # Blocked waits: consumer parks on each future (add_callback)
        # and is woken by producer's resolve (the _on_resolved thunk).
        chain = [Future() for _ in range(rounds)]

        def producer():
            for fut in chain:
                yield Delay(1)
                fut.resolve(None)

        def consumer():
            for fut in chain:
                yield fut

        sim.spawn(solo(), name="solo")
        sim.spawn(producer(), name="producer")
        sim.spawn(consumer(), name="consumer")
        sim.run()
        return sim.events

    assert benchmark(run) > 0
