"""Table 4: effects of compiler optimizations on the five benchmarks.

Rows: base case → +loop invariance (LI) → +merging calls (MC) →
+direct calls (DC) → hand-optimized runtime-level code.

Paper shapes reproduced here:

* each optimization never regresses; the full pipeline beats base;
* hand-optimized code is fastest ("the best compiler versions are
  1.1–1.3 times slower than the runtime system versions");
* BSC's large gain comes from loop invariance;
* Water's dominant gain comes from merging calls;
* EM3D gets a significant extra push from direct dispatch (static
  update's null read handlers deleted in the kernel).
"""

from repro.harness import by_app, format_table
from repro.harness.experiments import table4_rows

ORDER = ["base", "LI", "LI+MC", "LI+MC+DC", "hand"]


def test_table4_compiler_optimizations(benchmark):
    rows = benchmark.pedantic(table4_rows, rounds=1, iterations=1)
    d = by_app(rows)
    table = [
        (variant, *[d[app][variant] for app in sorted(d)])
        for variant in ORDER
    ]
    print()
    print(
        format_table(
            "Table 4 — compiler optimization ladder (simulated cycles)",
            ["optimization", *sorted(d)],
            table,
        )
    )
    slowdowns = {app: d[app]["LI+MC+DC"] / d[app]["hand"] for app in d}
    print("best-compiled / hand:", {a: f"{s:.2f}x" for a, s in slowdowns.items()})
    benchmark.extra_info["rows"] = [tuple(r) for r in rows]

    for app, v in d.items():
        # the ladder is monotone and ends below base
        assert v["base"] >= v["LI"] >= v["LI+MC"] >= v["LI+MC+DC"], app
        assert v["LI+MC+DC"] < v["base"], app
        # hand-optimized is the floor (5% slack: TSP is branch-and-bound,
        # where incumbent-propagation timing shifts the expansion count)
        assert v["hand"] <= v["LI+MC+DC"] * 1.05, app
        # best compiled within ~1.5x of hand (paper: 1.1-1.3x)
        assert v["LI+MC+DC"] / v["hand"] < 1.6, app

    # per-app signature effects
    assert d["BSC"]["base"] / d["BSC"]["LI"] > 1.5, "BSC: LI should be the big win"
    assert d["Water"]["LI"] / d["Water"]["LI+MC"] > 1.2, "Water: MC should be the big win"
    assert d["EM3D"]["LI+MC"] / d["EM3D"]["LI+MC+DC"] > 1.1, "EM3D: DC should matter"
