"""Ablation: the cost of Ace's space-indirection dispatch (§4.1/§5.1).

Every Ace primitive looks the region's space up in a hash table and
calls through protocol pointers; §5.1 blames this indirection for Ace
not beating CRL on coarse-grained BSC.  Zeroing the modeled dispatch
cost quantifies it: fine-grained EM3D should speed up noticeably,
coarse-grained BSC barely.
"""

from repro.apps import bsc, em3d
from repro.core import AceConfig
from repro.facade import run_spmd
from repro.harness import format_table
from repro.harness.experiments import FIG7_WORKLOADS


def _run_pair(program):
    t_with = run_spmd(program, backend="ace", n_procs=8).time
    t_without = run_spmd(
        program, backend="ace", n_procs=8, config=AceConfig(dispatch_cost=0)
    ).time
    return t_with, t_without


def _experiment():
    em_wl = FIG7_WORKLOADS["EM3D"]()
    bsc_wl = FIG7_WORKLOADS["BSC"]()
    em = _run_pair(em3d.em3d_program(em_wl, em3d.SC_PLAN))
    bs = _run_pair(bsc.bsc_program(bsc_wl, bsc.SC_PLAN))
    return {"EM3D": em, "BSC": bs}


def test_dispatch_indirection_cost(benchmark):
    results = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    table = [
        (app, w, wo, f"{(w - wo) / w * 100:.1f}%") for app, (w, wo) in sorted(results.items())
    ]
    print()
    print(
        format_table(
            "Ablation — space-dispatch indirection (cycles)",
            ["app", "dispatch=10", "dispatch=0", "overhead"],
            table,
        )
    )
    benchmark.extra_info["rows"] = table

    em_overhead = (results["EM3D"][0] - results["EM3D"][1]) / results["EM3D"][0]
    bsc_overhead = (results["BSC"][0] - results["BSC"][1]) / results["BSC"][0]
    # fine-grained code pays proportionally more for the indirection
    assert em_overhead > bsc_overhead
    assert em_overhead > 0.02
    assert bsc_overhead < 0.05
