"""§3.3's in-text EM3D protocol ladder.

"Using [the dynamic update] protocol results in a speedup of 3.5 over
the invalidation-based protocol. ... [The static update] protocol
results in a speedup of about five over the invalidation-based
protocol."  Shape: SC < dynamic update < static update.
"""

from repro.harness import BENCH_PROCS, by_app, format_table, sec33_ladder_rows


def test_sec33_em3d_protocol_ladder(benchmark):
    rows = benchmark.pedantic(sec33_ladder_rows, rounds=1, iterations=1)
    v = by_app(rows)["EM3D"]
    table = [
        ("SC (invalidate)", v["SC"], "1.00x"),
        ("DynamicUpdate", v["DynamicUpdate"], f"{v['SC'] / v['DynamicUpdate']:.2f}x"),
        ("StaticUpdate", v["StaticUpdate"], f"{v['SC'] / v['StaticUpdate']:.2f}x"),
    ]
    print()
    print(
        format_table(
            f"§3.3 — EM3D protocol ladder, {BENCH_PROCS} procs (cycles)",
            ["protocol", "cycles", "speedup vs SC"],
            table,
        )
    )
    benchmark.extra_info["rows"] = [tuple(r) for r in rows]

    assert v["StaticUpdate"] < v["DynamicUpdate"] < v["SC"]
    assert v["SC"] / v["DynamicUpdate"] > 1.5   # paper: ~3.5
    assert v["SC"] / v["StaticUpdate"] > 2.5    # paper: ~5
