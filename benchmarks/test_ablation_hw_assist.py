"""Ablation: §6's hardware access-fault control (Typhoon/FLASH path).

``HwSC`` keeps the SC state machine but performs the fast-path access
checks in a modeled hardware unit and bypasses the software dispatch.
The paper's claim is architectural: the application/protocol
separation lets a protocol adopt such mechanisms with no application
change.  The measurable consequence: fine-grained EM3D gains a lot,
miss-dominated traffic gains little (hardware only accelerates hits).
"""

from repro.apps import em3d
from repro.facade import run_spmd
from repro.harness import format_table
from repro.harness.experiments import FIG7_WORKLOADS


def _experiment():
    wl = FIG7_WORKLOADS["EM3D"]()
    out = {}
    for proto in ("SC", "HwSC"):
        plan = {"protocol": proto}
        res = run_spmd(em3d.em3d_program(wl, plan), backend="ace", n_procs=8)
        out[proto] = res.time
    return out


def test_hardware_access_control(benchmark):
    times = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Ablation — software SC vs hardware-assisted SC on EM3D (cycles)",
            ["protocol", "cycles"],
            [("SC (software checks)", times["SC"]),
             ("HwSC (hardware checks)", times["HwSC"])],
        )
    )
    print(f"hardware speedup: {times['SC'] / times['HwSC']:.2f}x")
    benchmark.extra_info.update(times)
    assert times["HwSC"] < times["SC"]
    # hits accelerate; the miss path (messages) is untouched, so the
    # speedup is real but bounded
    assert times["SC"] / times["HwSC"] < 2.5
