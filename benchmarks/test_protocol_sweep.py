"""Protocol sweep: one application, the whole library.

EM3D runs unmodified under five protocols — the practical payoff of
§2.2's space indirection (performance tuning and even *race checking*
are a one-argument change).  Also quantifies the §2.1 LCM-style
instrumentation cost: RaceDetect pays for its per-access recording and
per-epoch summary traffic relative to the equivalent update protocol.
"""

import numpy as np

from repro.apps import em3d
from repro.facade import run_spmd
from repro.harness import format_table
from repro.harness.experiments import FIG7_WORKLOADS

PROTOCOLS = ["SC", "DynamicUpdate", "StaticUpdate", "BufferedUpdate", "RaceDetect"]


def _experiment():
    wl = FIG7_WORKLOADS["EM3D"]()
    ref = em3d.reference(wl, 8)
    out = {}
    for proto in PROTOCOLS:
        res = run_spmd(
            em3d.em3d_program(wl, {"protocol": proto}), backend="ace", n_procs=8
        )
        e, h = em3d.collect_results(res, wl)
        assert np.allclose(e, ref[0]) and np.allclose(h, ref[1]), proto
        out[proto] = res.time
    return out


def test_em3d_protocol_sweep(benchmark):
    times = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    sc = times["SC"]
    print()
    print(
        format_table(
            "Protocol sweep — EM3D under five protocols (cycles, identical results)",
            ["protocol", "cycles", "vs SC"],
            [(p, times[p], f"{sc / times[p]:.2f}x") for p in PROTOCOLS],
        )
    )
    benchmark.extra_info.update(times)

    # update protocols all beat SC for this producer-consumer pattern
    for p in ("DynamicUpdate", "StaticUpdate", "BufferedUpdate"):
        assert times[p] < sc, p
    # batched protocols beat eager per-write propagation
    assert times["StaticUpdate"] < times["DynamicUpdate"]
    assert times["BufferedUpdate"] < times["DynamicUpdate"]
    # race checking costs instrumentation + summary traffic relative to
    # the equivalent (static-update-style) data movement, but still far
    # less than running full SC invalidation
    assert times["RaceDetect"] > times["StaticUpdate"]
    assert times["RaceDetect"] < sc
