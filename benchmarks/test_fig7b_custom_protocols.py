"""Figure 7b: single (SC) protocol vs application-specific protocols in Ace.

Paper shape: "The speedups range from a factor of 1.02 to 5 (average
speedup is approx. 2)" — EM3D (static update) is the biggest winner,
BSC the smallest ("the performance improvement is marginal"), Water
about 2x from phase switching.
"""

from repro.harness import BENCH_PROCS, by_app, fig7b_rows, format_table


def test_fig7b_custom_protocols(benchmark):
    rows = benchmark.pedantic(fig7b_rows, rounds=1, iterations=1)
    d = by_app(rows)
    table = [
        (app, v["SC"], v["custom"], f"{v['SC'] / v['custom']:.2f}x")
        for app, v in sorted(d.items())
    ]
    print()
    print(
        format_table(
            f"Figure 7b — SC vs application-specific protocols, {BENCH_PROCS} procs (cycles)",
            ["app", "SC", "custom", "speedup"],
            table,
        )
    )
    benchmark.extra_info["rows"] = [tuple(r) for r in rows]

    speedups = {app: v["SC"] / v["custom"] for app, v in d.items()}
    # every app improves (or at worst matches)
    for app, s in speedups.items():
        assert s >= 1.0, f"{app}: custom protocol slower than SC ({s:.2f})"
    # EM3D's static update is the biggest win; BSC's is marginal
    assert speedups["EM3D"] == max(speedups.values())
    assert speedups["EM3D"] > 2.5
    assert speedups["BSC"] == min(speedups.values())
    assert speedups["BSC"] < 1.15
    # Water's phase switching ~ 2x (§2.2)
    assert 1.5 < speedups["Water"] < 3.0
    # average speedup ~ 2 (paper: "approx. 2")
    avg = sum(speedups.values()) / len(speedups)
    assert 1.4 < avg < 3.0
