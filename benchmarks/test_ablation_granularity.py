"""Ablation: user-specified granularity vs fixed coherence units (§2.3).

The paper's "false sharing of protocols": when independently-written
data share a fixed-size coherence unit, per-datum assertions (here:
"each counter has a single writer") become false for the unit, and an
SC protocol ping-pongs ownership.  With user-specified granularity
each counter is its own region and writes are home-local.
"""

from repro.facade import run_spmd
from repro.harness import format_table

N_COUNTERS = 32
WRITES = 6
PACK = 8  # counters per fixed-size coherence unit


def _counters_program(pack: int):
    """Each counter is written by proc (counter % P); regions hold
    ``pack`` counters — pack=1 is user-specified granularity."""
    shared = {}

    def program(ctx):
        sid = yield from ctx.new_space("SC")
        n_regions = N_COUNTERS // pack
        if ctx.nid == 0:
            shared["rids"] = []
            for _ in range(n_regions):
                rid = yield from ctx.gmalloc(sid, pack)
                shared["rids"].append(rid)
        yield from ctx.barrier()
        handles = []
        for rid in shared["rids"]:
            h = yield from ctx.map(rid)
            handles.append(h)
        yield from ctx.barrier()
        for _ in range(WRITES):
            for c in range(N_COUNTERS):
                if c % ctx.n_procs != ctx.nid:
                    continue
                h = handles[c // pack]
                yield from ctx.start_write(h)
                h.data[c % pack] += 1
                yield from ctx.end_write(h)
        yield from ctx.barrier()
        return True

    return program


def _experiment():
    fine = run_spmd(_counters_program(1), backend="ace", n_procs=8).time
    coarse = run_spmd(_counters_program(PACK), backend="ace", n_procs=8).time
    return fine, coarse


def test_user_granularity_avoids_protocol_false_sharing(benchmark):
    fine, coarse = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print()
    print(
        format_table(
            "Ablation — granularity and false sharing of protocols (cycles)",
            ["granularity", "cycles"],
            [("one region per counter (user-specified)", fine),
             (f"{PACK} counters per region (fixed unit)", coarse)],
        )
    )
    print(f"false-sharing slowdown: {coarse / fine:.2f}x")
    benchmark.extra_info["fine"] = fine
    benchmark.extra_info["coarse"] = coarse
    # packing independently-written counters into one unit must cost
    # dearly (ownership ping-pong between the 8 writers)
    assert coarse > 2.0 * fine
