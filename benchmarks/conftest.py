"""Shared helpers for the benchmark suite.

Every benchmark regenerates one paper artifact: it runs the experiment
under ``pytest-benchmark`` (wall-clock of the simulation is incidental;
the *simulated cycle counts* are the result), prints the paper-style
table, asserts the paper's qualitative shape, and stores the rows in
``benchmark.extra_info`` for machine consumption.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
