"""Why static update beats invalidation: the message-mix view (§3.3).

Records EM3D twice with the trace layer on — once under the default
SC invalidation protocol, once under the Falsafi-style static update
protocol — and diffs the two message mixes.  The cycle counts say
static update wins; the trace says *why*: the read_req/read_data
round trips on every consumer miss disappear, replaced by one-way
pushes from the producer.

    python examples/em3d_message_mix.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.experiments import trace_run  # noqa: E402
from repro.obs import message_mix, mix_delta, run_summary  # noqa: E402


def main():
    runs = {}
    for variant in ("SC", "static"):
        result, buf = trace_run("EM3D", variant, n_procs=8)
        runs[variant] = (result, buf, run_summary(result, buf))

    print(f"{'':24s} {'SC (invalidate)':>16s} {'static update':>14s}")
    for field in ("cycles", "msg_total", "msg_words", "stall_total"):
        sc = runs["SC"][2][field]
        st = runs["static"][2][field]
        print(f"  {field:22s} {sc:>16d} {st:>14d}")

    sc_mix = message_mix(runs["SC"][1])
    st_mix = message_mix(runs["static"][1])
    print("\nMessage mix by category (count, words):")
    for label, mix in (("SC", sc_mix), ("static", st_mix)):
        print(f"  {label}:")
        for cat, slot in sorted(mix.items(), key=lambda kv: -kv[1]["count"]):
            print(f"    {cat:32s} {slot['count']:>6d}  {slot['words']:>6d}")

    print("\nDelta (SC minus static; positive = SC sends more):")
    for cat, n in mix_delta(sc_mix, st_mix).items():
        print(f"    {cat:32s} {n:>+6d}")

    sc_cycles = runs["SC"][2]["cycles"]
    st_cycles = runs["static"][2]["cycles"]
    print(f"\nStatic update is {sc_cycles / st_cycles:.2f}x faster: the "
          "read_req/read_data/grant_ack traffic (a round trip per consumer "
          "miss) is gone, replaced by one push per produced value.")


if __name__ == "__main__":
    main()
