"""Extensibility (§2.4): write and register a brand-new protocol.

Implements a *write-once / freeze* protocol ("WriteOnce") against the
full-access-control interface: the home writes a region exactly once,
then readers cache it forever with no coherence traffic.  Registering
it takes one class with a `ProtocolSpec` — the Python analog of the
paper's Figure 1 Tcl script — after which applications select it by
name like any shipped protocol.

    python examples/custom_protocol.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.facade import run_spmd  # noqa: E402
from repro.protocols import ProtocolRegistry, ProtocolSpec  # noqa: E402
from repro.protocols.base import ProtocolMisuse  # noqa: E402
from repro.protocols.caching import CachedCopyProtocol  # noqa: E402
from repro.protocols.registry import default_registry  # noqa: E402
from repro.sim import Delay  # noqa: E402

# A fresh registry: the shipped protocols plus ours.
registry = ProtocolRegistry()
for name in default_registry.names():
    registry.register(default_registry.get(name))


@registry.register
class WriteOnceProtocol(CachedCopyProtocol):
    """Home writes once; readers snapshot at map time, then never revalidate."""

    spec = ProtocolSpec(
        name="WriteOnce",
        optimizable=True,
        null_hooks=frozenset({"start_read", "end_read"}),
        description="freeze after first write; reads are free forever",
    )

    def start_write(self, nid, handle):
        if handle.region.home != nid:
            raise ProtocolMisuse("WriteOnce: only the creator may write")
        if handle.meta.get("frozen"):
            raise ProtocolMisuse("WriteOnce: region already written once")
        yield Delay(4)

    def end_write(self, nid, handle):
        yield Delay(4)
        handle.meta["frozen"] = True


def program(ctx):
    space = yield from ctx.new_space("WriteOnce")
    if ctx.nid == 0:
        rid = yield from ctx.gmalloc(space, 16)
        h = yield from ctx.map(rid)
        yield from ctx.start_write(h)
        h.data[:] = range(16)
        yield from ctx.end_write(h)
        program.rid = rid
    yield from ctx.barrier()
    h = yield from ctx.map(program.rid)
    total = 0.0
    for _ in range(100):  # hot read loop: zero coherence traffic
        yield from ctx.start_read(h)
        total += float(h.data.sum())
        yield from ctx.end_read(h)
    return total


def main():
    result = run_spmd(program, backend="ace", n_procs=4, registry=registry)
    print(f"registered protocols: {', '.join(registry.names())}")
    print(f"simulated time: {result.time} cycles")
    print(f"per-node totals: {[r for r in result.results]}")
    fetches = result.stats.get("msg.proto.WriteOnce.fetch")
    print(f"data fetches: {fetches} (one per remote reader, "
          f"then {4 * 100} reads at zero message cost)")
    config = registry.config_table()["WriteOnce"]
    print(f"compiler sees: optimizable={config['optimizable']}, "
          f"null hooks={config['null_hooks']}")


if __name__ == "__main__":
    main()
