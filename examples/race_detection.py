"""Data-race checking as a plug-in protocol (§2.1's LCM use case).

Runs the same buggy SPMD program twice: under the default SC protocol
it silently computes *something*; under the ``RaceDetect`` protocol —
selected with one ``Ace_NewSpace`` argument — every barrier epoch's
readers and writers are crossed at the home nodes and the race is
reported with the region and the offending processors.

    python examples/race_detection.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.facade import run_spmd  # noqa: E402


def make_program(protocol):
    boxes = {}

    def program(ctx):
        space = yield from ctx.new_space(protocol)
        if ctx.nid == 0:
            boxes["shared_sum"] = yield from ctx.gmalloc(space, 1)
        yield from ctx.barrier(space)
        h = yield from ctx.map(boxes["shared_sum"])

        # BUG: every node writes the same region in the same epoch,
        # read-modify-write without a lock.
        yield from ctx.start_write(h)
        h.data[0] += ctx.nid + 1
        yield from ctx.end_write(h)

        yield from ctx.barrier(space)
        yield from ctx.start_read(h)
        out = h.data[0]
        yield from ctx.end_read(h)
        yield from ctx.barrier(space)
        return out

    return program


def main():
    expected = sum(range(1, 5))  # 1+2+3+4 if the updates composed
    for protocol in ("SC", "RaceDetect"):
        res = run_spmd(make_program(protocol), backend="ace", n_procs=4)
        print(f"[{protocol}] results per node: {[float(r) for r in res.results]} "
              f"(intended answer: {expected}.0)")
        if protocol == "RaceDetect":
            proto = res.backend.runtime.spaces[0].protocol
            for epoch, rid, readers, writers in proto.races:
                print(f"  RACE: epoch {epoch}, region {rid}: "
                      f"writers={list(writers)} readers={list(readers)}")
            if not proto.races:
                print("  no races detected")
    print()
    print("SC happened to serialize the increments through exclusive "
          "ownership, but four unsynchronized writers in one barrier epoch "
          "is still a (latent) race — the detector names them; porting the "
          "program to any update protocol would silently drop updates, as "
          "the RaceDetect run's own last-writer data semantics show.")


if __name__ == "__main__":
    main()
