"""The paper's running example (§3.3): customizing EM3D's protocols.

Develop with the default sequentially-consistent protocol, then plug
in a dynamic update library, then the Falsafi-style static update
library — two `Ace_ChangeProtocol` calls each — and watch the
simulated execution time drop.

    python examples/em3d_protocols.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.apps import em3d  # noqa: E402
from repro.facade import run_spmd  # noqa: E402


def main():
    workload = em3d.EM3DWorkload(n_e=96, n_h=96, degree=5, pct_remote=0.25, n_iters=6)
    n_procs = 8
    reference_e, reference_h = em3d.reference(workload, n_procs)

    print(f"EM3D: {workload.n_e}+{workload.n_h} nodes, degree {workload.degree}, "
          f"{workload.n_iters} iterations, {n_procs} simulated processors\n")

    baseline = None
    for label, plan in (
        ("SC (default invalidate)", em3d.SC_PLAN),
        ("DynamicUpdate", em3d.DYNAMIC_PLAN),
        ("StaticUpdate (Falsafi)", em3d.STATIC_PLAN),
    ):
        result = run_spmd(em3d.em3d_program(workload, plan), backend="ace", n_procs=n_procs)
        e, h = em3d.collect_results(result, workload)
        assert np.allclose(e, reference_e) and np.allclose(h, reference_h), label
        baseline = baseline or result.time
        print(f"  {label:26s} {result.time:>9d} cycles   "
              f"speedup {baseline / result.time:.2f}x   "
              f"messages {result.stats.get('msg.total')}")

    print("\nAll three protocols computed identical values "
          "(checked against a sequential NumPy reference).")


if __name__ == "__main__":
    main()
