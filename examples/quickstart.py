"""Quickstart: shared memory over a simulated multicomputer.

Runs a four-node SPMD program against the Ace runtime: allocate a
region from a space, write it on one node, read it everywhere, and
inspect the simulated cycle count and message statistics.

    python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.facade import run_spmd  # noqa: E402


def program(ctx):
    """One node's code.  All runtime calls are generators: drive them
    with ``yield from`` (the simulated blocking call)."""
    # Ace_NewSpace: a space binds a data structure to a protocol.
    space = yield from ctx.new_space("SC")

    # Node 0 allocates a region (Ace_GMalloc) and publishes its id.
    if ctx.nid == 0:
        rid = yield from ctx.gmalloc(space, size=8)
        h = yield from ctx.map(rid)
        yield from ctx.start_write(h)
        h.data[:] = [ctx.nid * 100 + i for i in range(8)]
        yield from ctx.end_write(h)
        program.rid = rid
    yield from ctx.barrier()

    # Everyone maps the region and reads it coherently.
    h = yield from ctx.map(program.rid)
    yield from ctx.start_read(h)
    total = float(h.data.sum())
    yield from ctx.end_read(h)
    return (ctx.nid, total)


def main():
    result = run_spmd(program, backend="ace", n_procs=4)
    print(f"simulated execution time: {result.time} cycles")
    for nid, total in result.results:
        print(f"  node {nid}: sum = {total}")
    print(f"messages sent: {result.stats.get('msg.total')}")
    print(f"read misses:   {result.stats.get('ace.sc.read_miss')}")

    # The same program runs unmodified on the CRL baseline:
    crl = run_spmd(program, backend="crl", n_procs=4)
    print(f"same program on CRL: {crl.time} cycles "
          f"(Ace/CRL = {result.time / crl.time:.2f})")


if __name__ == "__main__":
    main()
