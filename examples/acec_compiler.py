"""The Ace compiler end to end (§4.2, Figures 5 and 6).

Compiles an AceC program (C with the `shared` qualifier) at each of
Table 4's optimization levels, shows the annotated IR the compiler
produced, and runs every level on the simulated machine to demonstrate
that the optimizations preserve semantics while shaving cycles.

    python examples/acec_compiler.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.compiler import (  # noqa: E402
    OPT_BASE,
    OPT_DIRECT,
    OPT_LI,
    OPT_LI_MC,
    compile_source,
    run_compiled,
)

SOURCE = """
void main() {
    int s = ace_new_space("SC");
    ace_change_protocol(s, "StaticUpdate");
    shared double *p;
    p = ace_gmalloc(s, 32);

    // seed
    for (int i = 0; i < 32; i++) { p[i] = i; }
    ace_barrier(s);

    // hot kernel: the compiler wraps every p[i] in MAP/START/END
    double total = 0;
    for (int it = 0; it < 20; it++) {
        for (int i = 0; i < 32; i++) { total += p[i]; }
    }
    print(total);
}
"""


def count_annotations(program):
    return sum(
        1
        for fn in program.ir.funcs.values()
        for ins in fn.all_instrs()
        if ins.op in ("map", "start_read", "end_read", "start_write", "end_write")
    )


def main():
    print("=== annotated IR at base level (Figure 5 shapes) ===")
    base = compile_source(SOURCE, opt=OPT_BASE)
    listing = base.dump().splitlines()
    for line in listing[:18]:
        print(line)
    print(f"   ... ({len(listing)} lines total)\n")

    print(f"{'level':10s} {'annotations':>12s} {'pass effects':>30s} {'cycles':>10s}  output")
    for level in (OPT_BASE, OPT_LI, OPT_LI_MC, OPT_DIRECT):
        prog = compile_source(SOURCE, opt=level)
        run = run_compiled(prog, n_procs=1)
        effects = ", ".join(f"{k}={v}" for k, v in prog.pass_stats.items()) or "-"
        print(
            f"{level.name:10s} {count_annotations(prog):>12d} {effects:>30s} "
            f"{run.time:>10d}  {run.prints[0][1]}"
        )
    print("\nSame answer at every level; fewer annotations and cycles each step.")


if __name__ == "__main__":
    main()
