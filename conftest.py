"""Make ``src/`` importable when the package is not installed.

Allows ``pytest tests/`` and ``pytest benchmarks/`` to run straight
from a checkout (including fully offline environments where
``pip install -e .`` cannot build an editable wheel).

Also applies the two-tier markers (see ``pyproject.toml``): every test
not explicitly marked ``slow`` is ``tier1``, so ``-m tier1`` and
``-m slow`` partition the suite exactly and a plain ``pytest`` run is
always the union of both tiers.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("slow") is None:
            item.add_marker(pytest.mark.tier1)
