"""Make ``src/`` importable when the package is not installed.

Allows ``pytest tests/`` and ``pytest benchmarks/`` to run straight
from a checkout (including fully offline environments where
``pip install -e .`` cannot build an editable wheel).
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
